"""Persistent content-addressed suite cache (DESIGN.md §8).

The contract under test: a ``(cell, seed)`` suite is keyed by a stable
fingerprint of everything that determines its result — workload id, x,
seed, policy set, horizon, run flags, fault plan and code epoch — so a
cached replay is byte-identical to a cold simulation, any change to the
sweep spec misses (never stale-hits), and corrupt entries degrade to
misses rather than errors.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ExperimentError
from repro.experiments.cache import (
    PolicySummary,
    SuiteCache,
    suite_fingerprint,
)
from repro.experiments.parallel import fork_available
from repro.experiments.runner import bcwc_model, standard_taskset, sweep
from repro.faults import FaultPlan, OverrunFault

HORIZON = 600.0
POLICIES = ("static", "ccEDF", "lpSTA")
WORKLOAD_ID = "test:cell-cache:n=5:bcwc=0.5"


def workload(u: float, seed: int):
    return standard_taskset(5, u, seed), bcwc_model(0.5, seed)


def payloads(cells) -> list[str]:
    return [json.dumps(cell.to_payload()) for cell in cells]


def fingerprint(**overrides) -> str:
    key = dict(workload_id=WORKLOAD_ID, x=0.7, seed=11,
               policies=POLICIES, horizon=HORIZON)
    key.update(overrides)
    digest, _ = suite_fingerprint(**key)
    return digest


class TestFingerprint:
    def test_stable_across_calls(self):
        assert fingerprint() == fingerprint()

    def test_policy_sequence_type_is_irrelevant(self):
        assert fingerprint(policies=list(POLICIES)) == fingerprint(
            policies=tuple(POLICIES))

    @pytest.mark.parametrize("change", (
        dict(workload_id="test:other"),
        dict(x=0.71),
        dict(seed=12),
        dict(policies=("static", "ccEDF")),
        dict(horizon=HORIZON * 2),
        dict(overhead_aware=True),
        dict(allow_misses=True),
        dict(faults=FaultPlan(seed=11, overrun=OverrunFault(
            factor=1.2, probability=0.5))),
        dict(code_epoch="0.0.0-dev"),
    ))
    def test_any_keyed_parameter_changes_the_digest(self, change):
        assert fingerprint(**change) != fingerprint()

    def test_payload_names_the_code_epoch(self):
        from repro import __version__
        _, payload = suite_fingerprint(
            workload_id=WORKLOAD_ID, x=0.7, seed=11,
            policies=POLICIES, horizon=HORIZON)
        assert payload["code_epoch"] == __version__


class TestSuiteCache:
    def summaries(self) -> dict[str, PolicySummary]:
        return {
            name: PolicySummary(normalized=0.5 + 0.061 * i, misses=i,
                                switches=40 + i, overruns=0,
                                released=120, interventions=i,
                                dispatches=900 + i)
            for i, name in enumerate(("none",) + POLICIES)}

    def test_roundtrip_is_float_exact(self, tmp_path):
        cache = SuiteCache(tmp_path)
        digest = fingerprint()
        cache.put(digest, self.summaries())
        got = cache.get(digest)
        assert got == self.summaries()
        # Bit-exact floats — the property byte-identity rests on.
        for name, summary in got.items():
            assert summary.normalized.hex() == \
                self.summaries()[name].normalized.hex()

    def test_miss_on_absent_and_corrupt_entries(self, tmp_path):
        cache = SuiteCache(tmp_path)
        digest = fingerprint()
        assert cache.get(digest) is None
        cache.put(digest, self.summaries())
        path = tmp_path / digest[:2] / f"{digest}.json"
        path.write_text("{not json")
        assert cache.get(digest) is None  # corrupt → miss, not error

    def test_counters_and_clear(self, tmp_path):
        cache = SuiteCache(tmp_path)
        digest = fingerprint()
        assert cache.get(digest) is None
        cache.put(digest, self.summaries())
        assert cache.get(digest) is not None
        assert (cache.hits, cache.misses, cache.writes) == (1, 1, 1)
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0
        assert cache.get(digest) is None


class TestSweepIntegration:
    def run(self, tmp_path, **kwargs):
        kwargs.setdefault("horizon", HORIZON)
        return sweep((0.4, 0.7), workload, POLICIES, n_tasksets=2,
                     cache_dir=tmp_path, workload_id=WORKLOAD_ID,
                     **kwargs)

    def count_simulations(self, monkeypatch):
        import repro.experiments.runner as runner_mod
        calls = []
        original = runner_mod.run_suite

        def counting(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        monkeypatch.setattr(runner_mod, "run_suite", counting)
        return calls

    def test_cache_dir_requires_workload_id(self, tmp_path):
        with pytest.raises(ExperimentError, match="workload_id"):
            sweep((0.5,), workload, POLICIES, n_tasksets=1,
                  horizon=HORIZON, cache_dir=tmp_path)

    def test_second_run_simulates_nothing(self, tmp_path, monkeypatch):
        reference = sweep((0.4, 0.7), workload, POLICIES,
                          n_tasksets=2, horizon=HORIZON)
        cold = self.run(tmp_path)
        assert payloads(cold) == payloads(reference)
        calls = self.count_simulations(monkeypatch)
        warm = self.run(tmp_path)
        assert calls == []  # every suite replayed from cache
        assert payloads(warm) == payloads(reference)

    def test_spec_change_invalidates(self, tmp_path, monkeypatch):
        self.run(tmp_path)
        calls = self.count_simulations(monkeypatch)
        self.run(tmp_path, horizon=HORIZON / 2)
        # Different horizon → different fingerprints → full re-run.
        assert len(calls) == 4

    def test_code_epoch_change_invalidates(self, tmp_path, monkeypatch):
        self.run(tmp_path)
        calls = self.count_simulations(monkeypatch)
        import repro
        monkeypatch.setattr(repro, "__version__", "999.0.0")
        self.run(tmp_path)
        assert len(calls) == 4

    @pytest.mark.skipif(not fork_available(),
                        reason="parallel executor needs fork()")
    def test_parallel_writes_serial_reads(self, tmp_path, monkeypatch):
        reference = sweep((0.4, 0.7), workload, POLICIES,
                          n_tasksets=2, horizon=HORIZON)
        cold = self.run(tmp_path, workers=4)
        assert payloads(cold) == payloads(reference)
        calls = self.count_simulations(monkeypatch)
        warm = self.run(tmp_path)  # serial, same cache
        assert calls == []
        assert payloads(warm) == payloads(reference)

    @pytest.mark.skipif(not fork_available(),
                        reason="parallel executor needs fork()")
    def test_cache_with_checkpoint_resume(self, tmp_path):
        reference = sweep((0.4, 0.7), workload, POLICIES,
                          n_tasksets=2, horizon=HORIZON)
        ckpt = tmp_path / "ckpt"
        self.run(tmp_path / "cache", checkpoint_dir=ckpt)
        (ckpt / "cell_0001.json").unlink()
        resumed = self.run(tmp_path / "cache", workers=4,
                           checkpoint_dir=ckpt, resume=True)
        assert payloads(resumed) == payloads(reference)
        assert (ckpt / "cell_0001.json").exists()

    def test_faulted_sweeps_key_on_the_plan(self, tmp_path, monkeypatch):
        def plan_for(x: float, seed: int) -> FaultPlan:
            return FaultPlan(seed=seed, overrun=OverrunFault(
                factor=1.1, probability=1.0))

        kwargs = dict(n_tasksets=2, horizon=HORIZON, allow_misses=True,
                      cache_dir=tmp_path, workload_id=WORKLOAD_ID)
        sweep((0.6,), workload, POLICIES, **kwargs)
        calls = self.count_simulations(monkeypatch)
        # Same scalars, now with a fault plan: must not hit.
        faulted = sweep((0.6,), workload, POLICIES,
                        faults_factory=plan_for, **kwargs)
        assert len(calls) == 2
        reference = sweep((0.6,), workload, POLICIES, n_tasksets=2,
                          horizon=HORIZON, allow_misses=True,
                          faults_factory=plan_for)
        assert payloads(faulted) == payloads(reference)
