"""Tests for the markdown report generator."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.config import FigureData, SeriesPoint, TableData
from repro.experiments.io import write_json
from repro.experiments.report import build_report, write_report


@pytest.fixture
def results_dir(tmp_path):
    fig = FigureData("EXP-F1", "A figure", "x", "y")
    fig.add_point("lpSTA", SeriesPoint(0.5, 0.42, 0.01, 10))
    fig.add_point("lpSTA", SeriesPoint(0.9, 0.61, 0.01, 10))
    fig.add_point("static", SeriesPoint(0.5, 0.25, 0.0, 10))
    fig.notes.append("a figure note")
    write_json(fig, tmp_path / "exp_f1.json")

    table = TableData("EXP-T1", "A table", columns=("profile", "levels"))
    table.add_row(profile="ideal", levels="continuous")
    write_json(table, tmp_path / "exp_t1.json")
    return tmp_path


class TestBuildReport:
    def test_contains_all_experiments(self, results_dir):
        report = build_report(results_dir)
        assert "EXP-T1" in report
        assert "EXP-F1" in report

    def test_tables_before_figures(self, results_dir):
        report = build_report(results_dir)
        assert report.index("EXP-T1") < report.index("EXP-F1")

    def test_figure_pivoted_by_x(self, results_dir):
        report = build_report(results_dir)
        assert "| 0.5 | 0.420 | 0.250 |" in report
        assert "| 0.9 | 0.610 |" in report

    def test_notes_rendered_as_quotes(self, results_dir):
        assert "> a figure note" in build_report(results_dir)

    def test_custom_title(self, results_dir):
        report = build_report(results_dir, title="My repro")
        assert report.startswith("# My repro")

    def test_empty_dir_rejected(self, tmp_path):
        with pytest.raises(ExperimentError):
            build_report(tmp_path)

    def test_non_experiment_json_ignored(self, results_dir, tmp_path):
        (results_dir / "junk.json").write_text('{"hello": 1}')
        report = build_report(results_dir)
        assert "hello" not in report


class TestWriteReport:
    def test_writes_file(self, results_dir, tmp_path):
        path = write_report(results_dir, tmp_path / "out" / "REPORT.md")
        assert path.exists()
        assert "EXP-F1" in path.read_text()


class TestCli:
    def test_report_command(self, results_dir, capsys):
        from repro.cli import main
        assert main(["report", str(results_dir)]) == 0
        out = capsys.readouterr().out
        assert "EXP-F1" in out
