"""Integration: all the extension mechanisms composed at once.

Each mechanism is safe in isolation; these tests pin the compositions a
real deployment would use — sporadic arrivals on a leaky, sleep-capable
processor with relock windows, guarded policies, and partitioning.
"""

import numpy as np
import pytest

from repro.cpu.power import PolynomialPowerModel
from repro.cpu.processor import Processor
from repro.cpu.speed import ContinuousScale
from repro.cpu.transition import ConstantOverhead
from repro.policies.procrastination import (
    ProcrastinationIdlePolicy,
    SleepOnIdlePolicy,
)
from repro.policies.registry import make_policy
from repro.sim.engine import simulate
from repro.sim.multicore import simulate_partitioned
from repro.tasks.arrivals import BurstyArrival, UniformJitterArrival
from repro.tasks.execution import BimodalExecution, UniformExecution
from repro.tasks.generators import generate_taskset


def full_platform() -> Processor:
    """Leaky, sleep-capable, with relock windows: the worst of it all."""
    return Processor(
        scale=ContinuousScale(min_speed=0.05),
        power_model=PolynomialPowerModel(alpha=3.0, static=0.2),
        transition_model=ConstantOverhead(switch_time=0.1,
                                          switch_energy=0.05),
        idle_power=0.2, sleep_power=0.01,
        wakeup_time=0.2, wakeup_energy=0.3)


class TestKitchenSink:
    @pytest.mark.parametrize("seed", (301, 302, 303))
    def test_guarded_stack_never_misses(self, seed):
        ts = generate_taskset(6, 0.8, np.random.default_rng(seed))
        policy = make_policy("lpSTA", overhead_aware=True,
                             critical_speed_floor=True)
        result = simulate(
            ts, full_platform(), policy,
            UniformExecution(low=0.2, high=1.0, seed=seed),
            arrival_model=UniformJitterArrival(jitter=0.5, seed=seed),
            idle_policy=ProcrastinationIdlePolicy(),
            horizon=min(ts.default_horizon(), 2400.0))
        assert not result.missed
        # The stack exercised every subsystem at least once.
        assert result.switch_count >= 0  # guard may veto everything

    def test_guarded_stack_beats_no_dvs(self):
        seed = 311
        ts = generate_taskset(6, 0.7, np.random.default_rng(seed))
        model = UniformExecution(low=0.3, high=1.0, seed=seed)
        arrivals = UniformJitterArrival(jitter=0.4, seed=seed)
        platform = full_platform()
        baseline = simulate(ts, platform, make_policy("none"), model,
                            arrival_model=arrivals, horizon=2400.0)
        guarded = simulate(
            ts, platform,
            make_policy("lpSTA", overhead_aware=True,
                        critical_speed_floor=True),
            model, arrival_model=arrivals,
            idle_policy=SleepOnIdlePolicy(), horizon=2400.0)
        assert guarded.total_energy < baseline.total_energy
        assert not guarded.missed

    def test_bursty_demand_and_arrivals_together(self):
        seed = 321
        ts = generate_taskset(5, 0.9, np.random.default_rng(seed))
        result = simulate(
            ts, full_platform(),
            make_policy("lpSEH", overhead_aware=True),
            BimodalExecution(light=0.05, heavy=1.0, p_heavy=0.5,
                             seed=seed),
            arrival_model=BurstyArrival(lull_factor=3.0, p_stay=0.85,
                                        seed=seed),
            horizon=min(ts.default_horizon(), 2400.0))
        assert not result.missed

    def test_partitioned_guarded_sporadic(self):
        seed = 331
        # generate_taskset caps U at 1; build a >1 set by merging two.
        rng = np.random.default_rng(seed)
        a = generate_taskset(5, 0.8, rng, name_prefix="A")
        b = generate_taskset(5, 0.8, rng, name_prefix="B")
        from repro.tasks.taskset import TaskSet
        merged = TaskSet(list(a) + list(b))
        result = simulate_partitioned(
            merged, 3, full_platform,
            lambda: make_policy("lpSTA", overhead_aware=True),
            UniformExecution(low=0.3, high=1.0, seed=seed),
            horizon=1200.0,
            arrival_model=UniformJitterArrival(jitter=0.3, seed=seed),
            check_feasibility=True)
        assert not result.missed
        assert result.total_energy > 0
