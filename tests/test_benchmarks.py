"""Tests for the benchmark task sets."""

import pytest

from repro.tasks.benchmarks import (
    BENCHMARK_TASKSETS,
    avionics_taskset,
    cnc_taskset,
    ins_taskset,
    load_benchmark,
)


class TestSuiteCharacteristics:
    def test_cnc_shape(self):
        ts = cnc_taskset()
        assert len(ts) == 8
        assert 0.45 <= ts.utilization <= 0.55

    def test_avionics_shape(self):
        ts = avionics_taskset()
        assert len(ts) == 17
        assert 0.80 <= ts.utilization <= 0.88

    def test_ins_shape(self):
        ts = ins_taskset()
        assert len(ts) == 6
        assert 0.68 <= ts.utilization <= 0.78

    @pytest.mark.parametrize("name", sorted(BENCHMARK_TASKSETS))
    def test_all_feasible(self, name):
        load_benchmark(name).assert_feasible_edf()

    @pytest.mark.parametrize("name", sorted(BENCHMARK_TASKSETS))
    def test_hyperperiods_computable(self, name):
        assert load_benchmark(name).hyperperiod() > 0

    @pytest.mark.parametrize("name", sorted(BENCHMARK_TASKSETS))
    def test_mixed_rates(self, name):
        ts = load_benchmark(name)
        assert ts.max_period / ts.min_period >= 10


class TestLoader:
    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            load_benchmark("nope")

    def test_fresh_instances(self):
        assert load_benchmark("cnc") is not load_benchmark("cnc")
