"""Tests for repro.sim.tracing."""

import pytest

from repro.errors import SimulationError
from repro.sim.tracing import Segment, SegmentKind, TraceRecorder


def run_segment(start, end, job="T#0", task="T", speed=0.5, energy=1.0):
    return Segment(start=start, end=end, kind=SegmentKind.RUN,
                   speed=speed, energy=energy, job=job, task=task)


class TestSegment:
    def test_duration(self):
        assert run_segment(1.0, 3.0).duration == pytest.approx(2.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(SimulationError):
            run_segment(3.0, 1.0)


class TestRecorder:
    def test_records_in_order(self):
        rec = TraceRecorder()
        rec.run(0.0, 1.0, "A#0", "A", 0.5, 0.1)
        rec.idle(1.0, 2.0, 0.0)
        rec.run(2.0, 3.0, "B#0", "B", 1.0, 1.0)
        assert len(rec) == 3
        assert [s.kind for s in rec] == [
            SegmentKind.RUN, SegmentKind.IDLE, SegmentKind.RUN]

    def test_merges_contiguous_identical_runs(self):
        rec = TraceRecorder()
        rec.run(0.0, 1.0, "A#0", "A", 0.5, 0.1)
        rec.run(1.0, 2.0, "A#0", "A", 0.5, 0.1)
        assert len(rec) == 1
        assert rec.segments[0].end == 2.0
        assert rec.segments[0].energy == pytest.approx(0.2)

    def test_does_not_merge_different_speeds(self):
        rec = TraceRecorder()
        rec.run(0.0, 1.0, "A#0", "A", 0.5, 0.1)
        rec.run(1.0, 2.0, "A#0", "A", 0.75, 0.1)
        assert len(rec) == 2

    def test_overlap_rejected(self):
        rec = TraceRecorder()
        rec.run(0.0, 2.0, "A#0", "A", 0.5, 0.1)
        with pytest.raises(SimulationError, match="overlap"):
            rec.run(1.0, 3.0, "B#0", "B", 0.5, 0.1)

    def test_zero_duration_dropped(self):
        rec = TraceRecorder()
        rec.run(1.0, 1.0, "A#0", "A", 0.5, 0.0)
        assert len(rec) == 0

    def test_disabled_recorder_is_noop(self):
        rec = TraceRecorder(enabled=False)
        rec.run(0.0, 1.0, "A#0", "A", 0.5, 0.1)
        assert len(rec) == 0

    def test_aggregates(self):
        rec = TraceRecorder()
        rec.run(0.0, 2.0, "A#0", "A", 0.5, 0.25)
        rec.idle(2.0, 3.0, 0.05)
        rec.switch(3.0, 3.1, 0.01, to_speed=1.0)
        rec.run(3.1, 4.1, "B#0", "B", 1.0, 1.0)
        assert rec.busy_time() == pytest.approx(3.0)
        assert rec.idle_time() == pytest.approx(1.0)
        assert rec.total_energy() == pytest.approx(1.31)
        assert rec.executed_work() == pytest.approx(2.0)
        assert rec.executed_work("A#0") == pytest.approx(1.0)


class TestGantt:
    def test_render_shows_tasks_and_idle(self):
        rec = TraceRecorder()
        rec.run(0.0, 5.0, "alpha#0", "alpha", 1.0, 1.0)
        rec.idle(5.0, 10.0, 0.0)
        strip = rec.render_gantt(width=10, end=10.0)
        assert strip == "AAAAA....."

    def test_empty_trace(self):
        assert "empty" in TraceRecorder().render_gantt()

    def test_unrecorded_tail_distinct_from_idle(self):
        # Buckets past the last segment are *unrecorded*, not idle:
        # they render "_" while a true recorded idle renders ".".
        rec = TraceRecorder()
        rec.run(0.0, 4.0, "alpha#0", "alpha", 1.0, 1.0)
        rec.idle(4.0, 6.0, 0.0)
        strip = rec.render_gantt(width=10, end=10.0)
        assert strip == "AAAA..____"

    def test_gap_between_segments_renders_unrecorded(self):
        rec = TraceRecorder()
        rec.run(0.0, 2.0, "alpha#0", "alpha", 1.0, 1.0)
        rec.run(8.0, 10.0, "beta#0", "beta", 1.0, 1.0)
        strip = rec.render_gantt(width=10, end=10.0)
        assert strip == "AA______BB"

    def test_switch_and_sleep_glyphs(self):
        rec = TraceRecorder()
        rec.run(0.0, 4.0, "alpha#0", "alpha", 1.0, 1.0)
        rec.switch(4.0, 6.0, 0.01, to_speed=0.5)
        rec.sleep(6.0, 10.0, 0.0)
        assert rec.render_gantt(width=10, end=10.0) == "AAAA||zzzz"


class TestNotesOfKind:
    def test_filters_by_kind(self):
        rec = TraceRecorder()
        rec.note(1.0, "governor", "A#0: raised 0.4000 -> 0.6000")
        rec.note(2.0, "overrun", "B#1: 1.3x")
        rec.note(3.0, "governor", "A#1: raised 0.3000 -> 0.5000")
        governor = rec.notes_of_kind("governor")
        assert [n.time for n in governor] == [1.0, 3.0]
        assert all(n.kind == "governor" for n in governor)
        assert rec.notes_of_kind("no-such-kind") == ()

    def test_result_exposes_the_same_filter(self):
        from repro.sim.results import SimulationResult
        rec = TraceRecorder()
        rec.note(1.0, "overrun", "B#1: 1.3x")
        result = SimulationResult(policy="x", horizon=10.0,
                                  notes=rec.notes)
        assert result.notes_of_kind("overrun") == rec.notes_of_kind(
            "overrun")


class TestNotesAlwaysBuffered:
    """``note()`` records even when segment tracing is disabled.

    Governor interventions and fault events are audit data, not trace
    decoration — a sweep run with ``record_trace=False`` must still
    surface them on ``SimulationResult.notes``.
    """

    def test_disabled_recorder_still_buffers_notes(self):
        rec = TraceRecorder(enabled=False)
        rec.note(1.0, "governor", "raised 0.4 -> 0.6")
        assert len(rec) == 0  # segments stay gated
        assert len(rec.notes) == 1
        assert rec.notes[0].kind == "governor"

    def test_untraced_simulation_surfaces_notes(self):
        from repro.cpu.profiles import ideal_processor
        from repro.faults import FaultPlan, OverrunFault
        from repro.policies.registry import make_policy
        from repro.sim.engine import simulate
        from repro.tasks.execution import WorstCaseExecution
        from repro.tasks.task import PeriodicTask
        from repro.tasks.taskset import TaskSet

        taskset = TaskSet([PeriodicTask("A", wcet=1.0, period=4.0),
                           PeriodicTask("B", wcet=2.5, period=10.0)])
        plan = FaultPlan(seed=7, overrun=OverrunFault(factor=1.3,
                                                      probability=1.0))
        result = simulate(
            taskset, ideal_processor(min_speed=0.05),
            make_policy("lpSTA", governed=True, governor_margin=1.3),
            WorstCaseExecution(), horizon=40.0, record_trace=False,
            allow_misses=True, faults=plan)
        assert result.trace is None
        assert result.notes  # buffered despite tracing being off
        assert result.notes_of_kind("overrun")
        kinds = {note.kind for note in result.notes}
        assert kinds <= {"overrun", "governor", "transition-fault",
                         "deadline-miss"}

    def test_traced_and_untraced_notes_agree(self):
        from repro.cpu.profiles import ideal_processor
        from repro.faults import FaultPlan, OverrunFault
        from repro.policies.registry import make_policy
        from repro.sim.engine import simulate
        from repro.tasks.execution import WorstCaseExecution
        from repro.tasks.task import PeriodicTask
        from repro.tasks.taskset import TaskSet

        taskset = TaskSet([PeriodicTask("A", wcet=1.0, period=4.0),
                           PeriodicTask("B", wcet=2.5, period=10.0)])

        def run(record_trace: bool):
            plan = FaultPlan(seed=7, overrun=OverrunFault(
                factor=1.3, probability=1.0))
            return simulate(
                taskset, ideal_processor(min_speed=0.05),
                make_policy("lpSTA", governed=True, governor_margin=1.3),
                WorstCaseExecution(), horizon=40.0,
                record_trace=record_trace, allow_misses=True,
                faults=plan)

        assert run(True).notes == run(False).notes
