"""Tests for repro.sim.tracing."""

import pytest

from repro.errors import SimulationError
from repro.sim.tracing import Segment, SegmentKind, TraceRecorder


def run_segment(start, end, job="T#0", task="T", speed=0.5, energy=1.0):
    return Segment(start=start, end=end, kind=SegmentKind.RUN,
                   speed=speed, energy=energy, job=job, task=task)


class TestSegment:
    def test_duration(self):
        assert run_segment(1.0, 3.0).duration == pytest.approx(2.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(SimulationError):
            run_segment(3.0, 1.0)


class TestRecorder:
    def test_records_in_order(self):
        rec = TraceRecorder()
        rec.run(0.0, 1.0, "A#0", "A", 0.5, 0.1)
        rec.idle(1.0, 2.0, 0.0)
        rec.run(2.0, 3.0, "B#0", "B", 1.0, 1.0)
        assert len(rec) == 3
        assert [s.kind for s in rec] == [
            SegmentKind.RUN, SegmentKind.IDLE, SegmentKind.RUN]

    def test_merges_contiguous_identical_runs(self):
        rec = TraceRecorder()
        rec.run(0.0, 1.0, "A#0", "A", 0.5, 0.1)
        rec.run(1.0, 2.0, "A#0", "A", 0.5, 0.1)
        assert len(rec) == 1
        assert rec.segments[0].end == 2.0
        assert rec.segments[0].energy == pytest.approx(0.2)

    def test_does_not_merge_different_speeds(self):
        rec = TraceRecorder()
        rec.run(0.0, 1.0, "A#0", "A", 0.5, 0.1)
        rec.run(1.0, 2.0, "A#0", "A", 0.75, 0.1)
        assert len(rec) == 2

    def test_overlap_rejected(self):
        rec = TraceRecorder()
        rec.run(0.0, 2.0, "A#0", "A", 0.5, 0.1)
        with pytest.raises(SimulationError, match="overlap"):
            rec.run(1.0, 3.0, "B#0", "B", 0.5, 0.1)

    def test_zero_duration_dropped(self):
        rec = TraceRecorder()
        rec.run(1.0, 1.0, "A#0", "A", 0.5, 0.0)
        assert len(rec) == 0

    def test_disabled_recorder_is_noop(self):
        rec = TraceRecorder(enabled=False)
        rec.run(0.0, 1.0, "A#0", "A", 0.5, 0.1)
        assert len(rec) == 0

    def test_aggregates(self):
        rec = TraceRecorder()
        rec.run(0.0, 2.0, "A#0", "A", 0.5, 0.25)
        rec.idle(2.0, 3.0, 0.05)
        rec.switch(3.0, 3.1, 0.01, to_speed=1.0)
        rec.run(3.1, 4.1, "B#0", "B", 1.0, 1.0)
        assert rec.busy_time() == pytest.approx(3.0)
        assert rec.idle_time() == pytest.approx(1.0)
        assert rec.total_energy() == pytest.approx(1.31)
        assert rec.executed_work() == pytest.approx(2.0)
        assert rec.executed_work("A#0") == pytest.approx(1.0)


class TestGantt:
    def test_render_shows_tasks_and_idle(self):
        rec = TraceRecorder()
        rec.run(0.0, 5.0, "alpha#0", "alpha", 1.0, 1.0)
        rec.idle(5.0, 10.0, 0.0)
        strip = rec.render_gantt(width=10, end=10.0)
        assert strip == "AAAAA....."

    def test_empty_trace(self):
        assert "empty" in TraceRecorder().render_gantt()
