"""Tests for repro.tasks.execution models."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.tasks.execution import (
    BimodalExecution,
    ConstantExecution,
    MarkovExecution,
    SinusoidalExecution,
    TraceExecution,
    TruncatedNormalExecution,
    UniformExecution,
    WorstCaseExecution,
    model_for_bcwc_ratio,
)
from repro.tasks.task import PeriodicTask


@pytest.fixture
def task() -> PeriodicTask:
    return PeriodicTask("T", wcet=10.0, period=100.0)


ALL_MODELS = [
    ConstantExecution(0.7),
    WorstCaseExecution(),
    UniformExecution(0.3, 0.9, seed=1),
    TruncatedNormalExecution(mean=0.6, std=0.2, seed=2),
    BimodalExecution(light=0.2, heavy=0.9, p_heavy=0.4, seed=3),
    SinusoidalExecution(offset=0.5, amplitude=0.3, cycle=10, seed=4),
    MarkovExecution(light=0.3, heavy=0.9, p_stay=0.8, seed=5),
    TraceExecution([0.5, 0.7, 0.9]),
]


class TestUniversalInvariants:
    @pytest.mark.parametrize("model", ALL_MODELS,
                             ids=lambda m: type(m).__name__)
    def test_work_in_valid_range(self, model, task):
        for index in range(200):
            work = model.work(task, index)
            assert 0.0 < work <= task.wcet + 1e-12

    @pytest.mark.parametrize("model", ALL_MODELS,
                             ids=lambda m: type(m).__name__)
    def test_deterministic_per_job(self, model, task):
        first = [model.work(task, i) for i in range(50)]
        second = [model.work(task, i) for i in range(50)]
        assert first == second

    @pytest.mark.parametrize("model", ALL_MODELS,
                             ids=lambda m: type(m).__name__)
    def test_order_independent(self, model, task):
        forward = [model.work(task, i) for i in range(30)]
        backward = [model.work(task, i) for i in reversed(range(30))]
        assert forward == list(reversed(backward))

    @pytest.mark.parametrize("model", ALL_MODELS,
                             ids=lambda m: type(m).__name__)
    def test_describe_is_nonempty(self, model):
        assert model.describe()

    def test_bcet_respected_as_floor(self):
        task = PeriodicTask("T", wcet=10.0, period=100.0, bcet=6.0)
        model = ConstantExecution(0.1)
        assert model.work(task, 0) == pytest.approx(6.0)


class TestConstant:
    def test_exact_fraction(self, task):
        assert ConstantExecution(0.25).work(task, 7) == pytest.approx(2.5)

    def test_worst_case_is_wcet(self, task):
        assert WorstCaseExecution().work(task, 0) == task.wcet

    @pytest.mark.parametrize("ratio", [0.0, -0.5, 1.5])
    def test_invalid_ratio(self, ratio):
        with pytest.raises(ConfigurationError):
            ConstantExecution(ratio)


class TestUniform:
    def test_bounds_respected(self, task):
        model = UniformExecution(0.4, 0.6, seed=9)
        ratios = [model.work(task, i) / task.wcet for i in range(500)]
        assert min(ratios) >= 0.4
        assert max(ratios) <= 0.6

    def test_mean_near_centre(self, task):
        model = UniformExecution(0.4, 0.6, seed=9)
        ratios = [model.work(task, i) / task.wcet for i in range(2000)]
        assert sum(ratios) / len(ratios) == pytest.approx(0.5, abs=0.01)

    def test_different_seeds_differ(self, task):
        a = UniformExecution(0.2, 1.0, seed=1).work(task, 0)
        b = UniformExecution(0.2, 1.0, seed=2).work(task, 0)
        assert a != b

    def test_different_tasks_independent(self):
        model = UniformExecution(0.2, 1.0, seed=1)
        t1 = PeriodicTask("T1", 10.0, 100.0)
        t2 = PeriodicTask("T2", 10.0, 100.0)
        assert model.work(t1, 0) != model.work(t2, 0)

    def test_invalid_bounds(self):
        with pytest.raises(ConfigurationError):
            UniformExecution(0.8, 0.5)
        with pytest.raises(ConfigurationError):
            UniformExecution(0.0, 0.5)


class TestTruncatedNormal:
    def test_within_truncation(self, task):
        model = TruncatedNormalExecution(mean=0.5, std=0.3, low=0.2, seed=1)
        for i in range(500):
            ratio = model.work(task, i) / task.wcet
            assert 0.2 <= ratio <= 1.0

    def test_zero_std_is_constant(self, task):
        model = TruncatedNormalExecution(mean=0.5, std=0.0, seed=1)
        works = [model.work(task, i) for i in range(10)]
        assert works == pytest.approx([5.0] * 10)


class TestBimodal:
    def test_only_two_values(self, task):
        model = BimodalExecution(light=0.2, heavy=0.8, p_heavy=0.5, seed=7)
        values = sorted({round(model.work(task, i), 9) for i in range(300)})
        assert values == pytest.approx([2.0, 8.0])

    def test_heavy_fraction_matches_probability(self, task):
        model = BimodalExecution(light=0.2, heavy=0.8, p_heavy=0.3, seed=7)
        heavy = sum(1 for i in range(3000)
                    if model.work(task, i) > 5.0)
        assert heavy / 3000 == pytest.approx(0.3, abs=0.03)

    def test_degenerate_probabilities(self, task):
        always = BimodalExecution(0.2, 0.8, p_heavy=1.0, seed=1)
        never = BimodalExecution(0.2, 0.8, p_heavy=0.0, seed=1)
        assert always.work(task, 5) == pytest.approx(8.0)
        assert never.work(task, 5) == pytest.approx(2.0)


class TestSinusoidal:
    def test_periodicity(self, task):
        model = SinusoidalExecution(offset=0.5, amplitude=0.3, cycle=10)
        assert model.work(task, 3) == pytest.approx(model.work(task, 13))

    def test_amplitude_bounds(self, task):
        model = SinusoidalExecution(offset=0.5, amplitude=0.3, cycle=16)
        ratios = [model.work(task, i) / task.wcet for i in range(32)]
        assert min(ratios) == pytest.approx(0.2, abs=0.01)
        assert max(ratios) == pytest.approx(0.8, abs=0.01)

    def test_out_of_range_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            SinusoidalExecution(offset=0.9, amplitude=0.3)


class TestMarkov:
    def test_burstiness(self, task):
        # With p_stay=0.95 runs of identical values should be long.
        model = MarkovExecution(light=0.2, heavy=0.9, p_stay=0.95, seed=3)
        values = [model.work(task, i) for i in range(400)]
        changes = sum(1 for a, b in zip(values, values[1:]) if a != b)
        assert changes < 60  # far fewer than the ~200 of a fair coin

    def test_states_map_to_ratios(self, task):
        model = MarkovExecution(light=0.25, heavy=0.75, p_stay=0.5, seed=3)
        values = sorted({round(model.work(task, i), 9) for i in range(200)})
        assert values == pytest.approx([2.5, 7.5])


class TestTrace:
    def test_cyclic_replay(self, task):
        model = TraceExecution([0.5, 1.0])
        assert model.work(task, 0) == pytest.approx(5.0)
        assert model.work(task, 1) == pytest.approx(10.0)
        assert model.work(task, 2) == pytest.approx(5.0)

    def test_per_task_traces(self):
        t1 = PeriodicTask("T1", 10.0, 100.0)
        t2 = PeriodicTask("T2", 10.0, 100.0)
        model = TraceExecution({"T1": [0.5], "T2": [1.0]})
        assert model.work(t1, 0) == pytest.approx(5.0)
        assert model.work(t2, 0) == pytest.approx(10.0)

    def test_missing_task_without_default_raises(self, task):
        model = TraceExecution({"other": [0.5]})
        with pytest.raises(ConfigurationError):
            model.work(task, 0)

    def test_empty_trace_rejected(self):
        with pytest.raises(ConfigurationError):
            TraceExecution([])

    def test_invalid_ratio_rejected(self):
        with pytest.raises(ConfigurationError):
            TraceExecution([1.5])


class TestFactory:
    def test_ratio_one_gives_worst_case(self):
        assert isinstance(model_for_bcwc_ratio(1.0), WorstCaseExecution)

    def test_partial_ratio_gives_uniform(self, task):
        model = model_for_bcwc_ratio(0.3, seed=5)
        assert isinstance(model, UniformExecution)
        assert model.low == 0.3
        for i in range(100):
            assert model.work(task, i) >= 0.3 * task.wcet - 1e-12
