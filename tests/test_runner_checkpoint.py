"""Tests for robust sweeps: checkpointing, resume, retries, and the
error-context satellites on :class:`SuiteResult` / :func:`run_suite`.
"""

import json

import pytest

from repro.cpu.profiles import ideal_processor
from repro.errors import ExperimentError, SuiteExecutionError
from repro.experiments.runner import (
    SuiteResult,
    bcwc_model,
    run_suite,
    standard_taskset,
    sweep,
)
from repro.faults import FaultPlan, OverrunFault
from repro.sim.results import SimulationResult

pytestmark = pytest.mark.faults

XS = (0.4, 0.6)
POLICIES = ("static", "ccEDF")
HORIZON = 300.0


def _workload(x, seed):
    return standard_taskset(4, x, seed), bcwc_model(0.5, seed)


def _sweep(**kwargs):
    return sweep(XS, _workload, POLICIES, n_tasksets=2,
                 master_seed=11, horizon=HORIZON, **kwargs)


def _flatten(cells):
    return [(c.x, sorted(c.normalized.items()), sorted(c.misses.items()),
             sorted(c.switches.items())) for c in cells]


class TestCheckpointResume:
    def test_resume_after_kill_is_identical(self, tmp_path):
        plain = _sweep()
        full = _sweep(checkpoint_dir=tmp_path)
        # Simulate a kill after the first cell: drop the second
        # checkpoint and resume.
        (tmp_path / "cell_0001.json").unlink()
        resumed = _sweep(checkpoint_dir=tmp_path, resume=True)
        assert _flatten(plain) == _flatten(full) == _flatten(resumed)

    def test_without_resume_checkpoints_are_cleared(self, tmp_path):
        _sweep(checkpoint_dir=tmp_path)
        stamp = (tmp_path / "cell_0000.json").read_text()
        # Corrupt the file, then re-run *without* resume: it must be
        # recomputed from scratch, not trusted.
        (tmp_path / "cell_0000.json").write_text("{}")
        _sweep(checkpoint_dir=tmp_path)
        assert (tmp_path / "cell_0000.json").read_text() == stamp

    def test_corrupt_checkpoint_recomputed_on_resume(self, tmp_path):
        full = _sweep(checkpoint_dir=tmp_path)
        (tmp_path / "cell_0000.json").write_text("not json at all")
        resumed = _sweep(checkpoint_dir=tmp_path, resume=True)
        assert _flatten(full) == _flatten(resumed)

    def test_foreign_fingerprint_refused(self, tmp_path):
        _sweep(checkpoint_dir=tmp_path)
        with pytest.raises(ExperimentError, match="different sweep"):
            sweep(XS, _workload, POLICIES, n_tasksets=2,
                  master_seed=999,  # different sweep parameters
                  horizon=HORIZON, checkpoint_dir=tmp_path, resume=True)

    def test_checkpoint_payload_round_trips_exactly(self, tmp_path):
        cells = _sweep(checkpoint_dir=tmp_path)
        resumed = _sweep(checkpoint_dir=tmp_path, resume=True)
        # Resumed cells come purely from JSON; exact float equality
        # proves the payload round-trip is lossless.
        for fresh, loaded in zip(cells, resumed):
            assert fresh.normalized == loaded.normalized
            assert fresh.interventions == loaded.interventions
            assert fresh.released == loaded.released

    def test_checkpoint_files_are_valid_json_with_fingerprint(
            self, tmp_path):
        _sweep(checkpoint_dir=tmp_path)
        files = sorted(tmp_path.glob("cell_*.json"))
        assert len(files) == len(XS)
        payload = json.loads(files[0].read_text())
        assert payload["fingerprint"]["master_seed"] == 11
        assert payload["cell"]["x"] == XS[0]


class TestRetries:
    def test_transient_failure_cured_by_retry(self):
        failures = {"armed": True}

        def flaky_workload(x, seed):
            if x == XS[1] and failures["armed"]:
                failures["armed"] = False
                raise OSError("transient I/O hiccup")
            return _workload(x, seed)

        cells = sweep(XS, flaky_workload, POLICIES, n_tasksets=2,
                      master_seed=11, horizon=HORIZON,
                      max_retries=1, retry_backoff=0.0)
        assert _flatten(cells) == _flatten(_sweep())

    def test_persistent_failure_propagates(self):
        def broken_workload(x, seed):
            raise OSError("disk on fire")

        with pytest.raises(OSError):
            sweep(XS, broken_workload, POLICIES, n_tasksets=2,
                  master_seed=11, horizon=HORIZON,
                  max_retries=2, retry_backoff=0.0)

    def test_negative_retries_rejected(self):
        with pytest.raises(ExperimentError):
            _sweep(max_retries=-1)


class TestErrorContext:
    def test_unknown_policy_names_available_keys(self):
        taskset, model = _workload(0.5, 7)
        suite = run_suite(taskset, ("static",), ideal_processor(), model,
                          horizon=HORIZON)
        with pytest.raises(ExperimentError) as err:
            suite.normalized("lpSTA")
        message = str(err.value)
        assert "lpSTA" in message
        assert "static" in message and "none" in message

    def test_miss_count_same_error_path(self):
        stub = SimulationResult(policy="none", horizon=HORIZON)
        suite = SuiteResult(results={"none": stub}, baseline=stub)
        with pytest.raises(ExperimentError, match="suite ran: none"):
            suite.miss_count("ghost")

    def test_simulate_failure_wrapped_with_context(self):
        # Overrun faults without allow_misses: the engine aborts on the
        # first miss; run_suite must wrap that with policy/seed/horizon.
        taskset, model = _workload(0.65, 3)
        plan = FaultPlan(seed=1, overrun=OverrunFault(factor=1.6))
        with pytest.raises(SuiteExecutionError) as err:
            run_suite(taskset, ("ccEDF",), ideal_processor(), model,
                      horizon=HORIZON, allow_misses=False,
                      faults=plan, workload_seed=424242)
        exc = err.value
        assert exc.policy in ("none", "ccEDF")
        assert exc.workload_seed == 424242
        assert exc.horizon == HORIZON
        assert "424242" in str(exc)
        assert exc.__cause__ is not None
