"""Telemetry layer: core primitives, engine counters, merge, manifests.

The contracts under test (DESIGN.md §9):

* the registry is disabled by default and a disabled run records
  nothing and costs nothing measurable on the engine loop;
* enabled engine counters agree with the hand-analysable two-task
  schedule and with ``SimulationResult``'s own totals;
* a parallel sweep merges worker deltas into exactly the counts the
  serial sweep records (no double counting across the fork);
* run manifests round-trip through JSON, detect fingerprint drift,
  and their cache section matches the actual suite-cache behaviour.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.cpu.profiles import ideal_processor
from repro.errors import ExperimentError
from repro.experiments.parallel import fork_available, shutdown_pool
from repro.experiments.runner import bcwc_model, standard_taskset, sweep
from repro.policies.registry import make_policy
from repro.sim.engine import simulate
from repro.tasks.execution import WorstCaseExecution
from repro.telemetry import (
    DEFAULT_BOUNDS,
    TELEMETRY,
    Histogram,
    RunManifest,
    Telemetry,
    next_manifest_path,
    render_manifest,
)

pytestmark = pytest.mark.telemetry

HORIZON = 300.0
POLICIES = ("static", "lpSTA")


@pytest.fixture(autouse=True)
def clean_registry():
    """Every test starts and ends with a pristine, disabled registry."""
    TELEMETRY.configure(enabled=False)
    TELEMETRY.reset()
    yield
    TELEMETRY.configure(enabled=False)
    TELEMETRY.reset()


def workload(u: float, seed: int):
    return standard_taskset(5, u, seed), bcwc_model(0.5, seed)


def run_two_task(two_task_set, policy_name="none"):
    policy = make_policy(policy_name)
    return simulate(two_task_set, ideal_processor(min_speed=0.05),
                    policy, WorstCaseExecution(), horizon=20.0)


class TestCore:
    def test_disabled_registry_records_nothing(self):
        tele = Telemetry()
        tele.inc("x")
        tele.observe("y", 0.5)
        with tele.span("z"):
            pass
        tele.record_worker(123, chunks=1, units=1, busy_s=0.1)
        snap = tele.snapshot()
        assert snap == {"counters": {}, "histograms": {},
                        "spans": {}, "workers": {}}

    def test_counter_and_histogram(self):
        tele = Telemetry()
        tele.configure(enabled=True)
        tele.inc("hits")
        tele.inc("hits", 4)
        tele.observe("speed", 0.3)
        tele.observe("speed", 0.9)
        assert tele.counter("hits") == 5
        hist = tele.histogram("speed")
        assert hist.count == 2
        assert hist.mean == pytest.approx(0.6)
        assert hist.min == pytest.approx(0.3)
        assert hist.max == pytest.approx(0.9)
        assert sum(hist.buckets) == 2

    def test_histogram_merge_equals_single(self):
        merged, single = Histogram(), Histogram()
        other = Histogram()
        for v in (0.01, 0.2, 0.2, 5.0, 1e6):
            single.observe(v)
        for v in (0.01, 0.2):
            merged.observe(v)
        for v in (0.2, 5.0, 1e6):
            other.observe(v)
        merged.merge_payload(other.to_payload())
        got, want = merged.to_payload(), single.to_payload()
        # Summation order differs across the merge, so the running
        # total is only float-approximately equal.
        assert got.pop("total") == pytest.approx(want.pop("total"))
        assert got == want

    def test_histogram_bounds_mismatch_rejected(self):
        hist = Histogram(bounds=(1.0, 2.0))
        with pytest.raises(ValueError, match="bounds"):
            hist.merge_payload(Histogram(DEFAULT_BOUNDS).to_payload())

    def test_span_accumulates(self):
        tele = Telemetry()
        tele.configure(enabled=True)
        for _ in range(3):
            with tele.span("phase"):
                time.sleep(0.001)
        span = tele.snapshot()["spans"]["phase"]
        assert span["count"] == 3
        assert span["wall_s"] >= 0.003

    def test_delta_then_merge_is_identity(self):
        tele = Telemetry()
        tele.configure(enabled=True)
        tele.inc("a", 2)
        tele.observe("h", 0.5)
        before = tele.snapshot()
        tele.inc("a", 3)
        tele.inc("b")
        tele.observe("h", 0.7)
        delta = tele.delta_since(before)
        assert delta["counters"] == {"a": 3, "b": 1}
        assert delta["histograms"]["h"]["count"] == 1
        # Folding the delta into a registry holding `before` must
        # reconstruct the full state — the cross-process contract.
        other = Telemetry()
        other.configure(enabled=True)
        other.inc("a", 2)
        other.observe("h", 0.5)
        other.merge_snapshot(delta)
        after = other.snapshot()
        assert after["counters"] == tele.snapshot()["counters"]
        assert (after["histograms"]["h"]["buckets"]
                == tele.snapshot()["histograms"]["h"]["buckets"])

    def test_snapshot_is_json_safe(self):
        tele = Telemetry()
        tele.configure(enabled=True)
        tele.inc("a")
        tele.observe("h", 2.0)
        with tele.span("p"):
            pass
        tele.record_worker(42, chunks=1, units=3, busy_s=0.5)
        json.dumps(tele.snapshot())  # must not raise


class TestEngineCounters:
    def test_two_task_schedule_counts(self, two_task_set):
        TELEMETRY.configure(enabled=True)
        result = run_two_task(two_task_set)
        # Hyperperiod 20: A releases at 0,4,8,12,16 and B at 0,10 —
        # seven jobs, all completing at full speed (U = 0.5).
        assert TELEMETRY.counter("engine.releases") == 7
        assert TELEMETRY.counter("engine.completions") == 7
        assert TELEMETRY.counter("engine.misses") == 0
        assert TELEMETRY.counter("engine.runs") == 1
        assert TELEMETRY.counter("engine.dispatches") == result.dispatches
        assert result.dispatches >= 7
        assert (TELEMETRY.counter("policy.none.decisions")
                == result.dispatches)
        hist = TELEMETRY.histogram("policy.none.speed")
        assert hist is not None and hist.count == result.dispatches
        assert hist.min == hist.max == 1.0  # no-DVS runs flat out

    def test_counters_accumulate_across_runs(self, two_task_set):
        TELEMETRY.configure(enabled=True)
        run_two_task(two_task_set)
        run_two_task(two_task_set)
        assert TELEMETRY.counter("engine.runs") == 2
        assert TELEMETRY.counter("engine.releases") == 14

    def test_disabled_run_records_nothing(self, two_task_set):
        run_two_task(two_task_set)
        assert TELEMETRY.snapshot() == {
            "counters": {}, "histograms": {}, "spans": {}, "workers": {}}

    def test_slack_policies_observe_slack(self, two_task_set):
        TELEMETRY.configure(enabled=True)
        run_two_task(two_task_set, "lpSTA")
        hist = TELEMETRY.histogram("policy.lpSTA.slack")
        assert hist is not None and hist.count > 0

    def test_disabled_overhead_not_measurable(self, three_task_set):
        """The disabled fast path must not cost engine time.

        An enabled run does strictly more work than a disabled one, so
        min-of-N disabled time at or below min-of-N enabled time (plus
        generous scheduling-noise headroom) pins the disabled path to
        'no measurable overhead'.  The absolute guard against *any*
        slowdown of the engine loop is bench_record.py --check.
        """
        def timed(enabled: bool) -> float:
            TELEMETRY.configure(enabled=enabled)
            best = float("inf")
            for _ in range(3):
                started = time.perf_counter()
                run_two_task(three_task_set, "lpSTA")
                best = min(best, time.perf_counter() - started)
            return best

        enabled = timed(True)
        TELEMETRY.reset()
        disabled = timed(False)
        assert disabled <= enabled * 1.5 + 0.01


@pytest.mark.skipif(not fork_available(),
                    reason="parallel executor needs fork()")
class TestParallelMerge:
    def test_parallel_counts_equal_serial(self):
        xs = (0.4, 0.7)
        kwargs = dict(n_tasksets=2, horizon=HORIZON)

        def engine_counts() -> dict[str, int]:
            counters = TELEMETRY.snapshot()["counters"]
            return {name: value for name, value in counters.items()
                    if name.split(".")[0] in ("engine", "policy")}

        TELEMETRY.configure(enabled=True)
        sweep(xs, workload, POLICIES, **kwargs)
        serial = engine_counts()
        TELEMETRY.reset()
        # The pool must fork *after* enabling, so workers inherit an
        # enabled registry; their fork-time snapshot subtracts any
        # inherited counts, so nothing is double-counted.
        shutdown_pool()
        try:
            sweep(xs, workload, POLICIES, workers=3, **kwargs)
            merged = engine_counts()
            workers_seen = TELEMETRY.snapshot()["workers"]
        finally:
            shutdown_pool()
        assert serial  # the comparison must not be vacuous
        assert merged == serial
        assert workers_seen  # worker accounting actually arrived
        assert (sum(w["units"] for w in workers_seen.values())
                == len(xs) * kwargs["n_tasksets"])


class TestManifest:
    FP = {"xs": [0.4, 0.7], "policies": ["static"], "master_seed": 2002}

    def manifest(self) -> RunManifest:
        return RunManifest(
            label="test", fingerprint=dict(self.FP),
            phases={"sweep.compute": {"count": 1, "wall_s": 1.5,
                                      "cpu_s": 1.2}},
            counters={"engine.runs": 4, "cache.hits": 2},
            histograms={}, cache={"hits": 2, "misses": 2, "writes": 2,
                                  "corrupt": 0},
            workers={"pool_workers": 2,
                     "per_worker": {"101": {"chunks": 1, "units": 2,
                                            "busy_s": 1.0}}},
            faults={"injected": False})

    def test_round_trip(self, tmp_path):
        manifest = self.manifest()
        path = manifest.write(tmp_path / "manifest_test_001.json")
        loaded = RunManifest.load(path)
        assert loaded.to_payload() == manifest.to_payload()
        assert loaded.cache_hit_rate() == pytest.approx(0.5)

    def test_fingerprint_match_passes(self):
        self.manifest().check_fingerprint(dict(self.FP))

    def test_fingerprint_mismatch_raises(self):
        drifted = dict(self.FP, master_seed=1999)
        with pytest.raises(ExperimentError, match="master_seed"):
            self.manifest().check_fingerprint(drifted)

    def test_foreign_payload_rejected(self, tmp_path):
        path = tmp_path / "manifest_x_001.json"
        path.write_text(json.dumps({"kind": "something-else"}))
        with pytest.raises(ExperimentError):
            RunManifest.load(path)

    def test_next_manifest_path_increments(self, tmp_path):
        first = next_manifest_path(tmp_path, "EXP-F1:u")
        first.write_text("{}")
        second = next_manifest_path(tmp_path, "EXP-F1:u")
        assert first.name != second.name
        assert second.name.endswith("_002.json")

    def test_render_mentions_key_sections(self):
        text = render_manifest(self.manifest())
        assert "fingerprint" in text
        assert "cache" in text
        assert "hit-rate 50.0%" in text


class TestSweepManifests:
    def test_manifest_matches_cache_state(self, tmp_path):
        """First run all misses, second all hits — manifests agree."""
        TELEMETRY.configure(enabled=True, manifest_dir=tmp_path / "tele")
        kwargs = dict(n_tasksets=2, horizon=HORIZON,
                      cache_dir=tmp_path / "cache",
                      workload_id="test:tele:n=5")
        xs = (0.4, 0.7)
        units = len(xs) * kwargs["n_tasksets"]
        sweep(xs, workload, POLICIES, **kwargs)
        sweep(xs, workload, POLICIES, **kwargs)
        manifests = sorted((tmp_path / "tele").glob("manifest_*.json"))
        assert len(manifests) == 2
        cold = RunManifest.load(manifests[0])
        warm = RunManifest.load(manifests[1])
        assert cold.cache == {"hits": 0, "misses": units,
                              "writes": units, "corrupt": 0}
        assert warm.cache == {"hits": units, "misses": 0,
                              "writes": 0, "corrupt": 0}
        assert warm.cache_hit_rate() == pytest.approx(1.0)
        # Same sweep spec -> identical fingerprints; and the warm run
        # simulated nothing, which the per-manifest deltas must show.
        cold.check_fingerprint(warm.fingerprint)
        assert cold.counters.get("engine.runs", 0) > 0
        assert warm.counters.get("engine.runs", 0) == 0
        assert "sweep.compute" in cold.phases

    def test_events_jsonl_is_structured(self, tmp_path):
        TELEMETRY.configure(enabled=True,
                            events_path=tmp_path / "events.jsonl",
                            manifest_dir=tmp_path)
        sweep((0.5,), workload, ("static",), n_tasksets=1,
              horizon=HORIZON, workload_id="test:events")
        lines = [json.loads(line) for line in
                 (tmp_path / "events.jsonl").read_text().splitlines()]
        kinds = {line["kind"] for line in lines}
        assert "sweep.start" in kinds
        assert "sweep.manifest" in kinds
        assert all("ts" in line and "seq" in line for line in lines)
