"""SIGTERM a mid-flight parallel sweep, then resume byte-identically.

This is the end-to-end drain contract (DESIGN.md §11) proven across a
real process boundary: a child process runs a parallel checkpointed
sweep, the parent SIGTERMs it once the first checkpoint lands, the
child converts the signal into :class:`SweepInterrupted` (exit 42
here), and a follow-up ``resume=True`` run completes the grid with
results byte-identical to a never-interrupted reference.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.experiments import parallel
from repro.experiments.runner import bcwc_model, standard_taskset, sweep

pytestmark = pytest.mark.chaos

SRC = str(Path(__file__).resolve().parents[1] / "src")
HORIZON = 400.0
POLICIES = ("static", "lpSTA")
XS = (0.3, 0.4, 0.5, 0.6, 0.7, 0.8)

needs_fork = pytest.mark.skipif(
    not parallel.fork_available(),
    reason="parallel executor needs fork()")

CHILD_SCRIPT = """
import sys, time
sys.path.insert(0, {src!r})
from repro.errors import SweepInterrupted
from repro.experiments.runner import bcwc_model, standard_taskset, sweep

def slow_workload(u, seed):
    time.sleep(0.2)
    return standard_taskset(4, u, seed), bcwc_model(0.5, seed)

try:
    sweep({xs!r}, slow_workload, {policies!r}, n_tasksets=2,
          horizon={horizon!r}, workers=2, chunk_size=1,
          checkpoint_dir={ckpt!r})
except SweepInterrupted as exc:
    print(f"drained signal={{exc.signal_number}} "
          f"cells={{exc.completed_cells}}", flush=True)
    sys.exit(42)
sys.exit(0)
"""


def workload(u: float, seed: int):
    return standard_taskset(4, u, seed), bcwc_model(0.5, seed)


def payloads(cells) -> list[str]:
    return [json.dumps(cell.to_payload()) for cell in cells]


@needs_fork
def test_sigterm_mid_parallel_sweep_then_resume(tmp_path):
    ckpt = tmp_path / "ckpt"
    script = CHILD_SCRIPT.format(src=SRC, xs=XS, policies=POLICIES,
                                 horizon=HORIZON, ckpt=str(ckpt))
    child = subprocess.Popen(
        [sys.executable, "-c", script],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    try:
        # Wait for proof of progress — the first checkpointed cell —
        # then interrupt while most of the grid is still in flight.
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            if child.poll() is not None or list(ckpt.glob("cell_*.json")):
                break
            time.sleep(0.05)
        assert child.poll() is None, (
            f"child exited early: {child.communicate()}")
        assert list(ckpt.glob("cell_*.json")), "no checkpoint within 60s"
        child.send_signal(signal.SIGTERM)
        out, err = child.communicate(timeout=60.0)
    except BaseException:
        child.kill()
        child.wait()
        raise
    assert child.returncode == 42, (child.returncode, out, err)
    assert "drained signal=15" in out

    done = sorted(ckpt.glob("cell_*.json"))
    assert 1 <= len(done) < len(XS)

    # The resumed run loads the drained cells verbatim and computes
    # only the remainder; the merged grid must match a clean serial
    # run byte for byte.
    reference = sweep(XS, workload, POLICIES, n_tasksets=2,
                      horizon=HORIZON)
    resumed = sweep(XS, workload, POLICIES, n_tasksets=2,
                    horizon=HORIZON, checkpoint_dir=ckpt, resume=True)
    assert payloads(resumed) == payloads(reference)
    assert len(sorted(ckpt.glob("cell_*.json"))) == len(XS)
