"""Tests for repro.sim.events.EventQueue."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import Event, EventKind, EventQueue


class TestOrdering:
    def test_time_order(self):
        q = EventQueue()
        q.push(5.0, EventKind.RELEASE, "b")
        q.push(1.0, EventKind.RELEASE, "a")
        q.push(3.0, EventKind.RELEASE, "c")
        assert [q.pop().payload for _ in range(3)] == ["a", "c", "b"]

    def test_completion_before_release_at_same_time(self):
        q = EventQueue()
        q.push(2.0, EventKind.RELEASE, "rel")
        q.push(2.0, EventKind.COMPLETION, "done")
        assert q.pop().payload == "done"
        assert q.pop().payload == "rel"

    def test_fifo_within_same_time_and_kind(self):
        q = EventQueue()
        for name in ("x", "y", "z"):
            q.push(1.0, EventKind.RELEASE, name)
        assert [q.pop().payload for _ in range(3)] == ["x", "y", "z"]

    def test_timer_after_release(self):
        q = EventQueue()
        q.push(1.0, EventKind.TIMER, "t")
        q.push(1.0, EventKind.RELEASE, "r")
        assert q.pop().payload == "r"


class TestAccess:
    def test_len_and_bool(self):
        q = EventQueue()
        assert not q
        q.push(1.0, EventKind.RELEASE)
        assert q and len(q) == 1

    def test_peek_does_not_remove(self):
        q = EventQueue()
        q.push(1.0, EventKind.RELEASE, "a")
        assert q.peek().payload == "a"
        assert len(q) == 1

    def test_next_time(self):
        q = EventQueue()
        assert q.next_time() is None
        q.push(7.0, EventKind.RELEASE)
        assert q.next_time() == 7.0

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_peek_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().peek()


class TestMonotonicity:
    def test_scheduling_into_the_past_rejected(self):
        q = EventQueue()
        q.push(5.0, EventKind.RELEASE)
        q.pop()
        with pytest.raises(SimulationError, match="before"):
            q.push(4.0, EventKind.RELEASE)

    def test_scheduling_at_popped_time_allowed(self):
        q = EventQueue()
        q.push(5.0, EventKind.RELEASE)
        q.pop()
        q.push(5.0, EventKind.COMPLETION)  # same instant is fine
        assert q.pop().time == 5.0
