"""Resilience layer: classification, deadlines, quarantine, chaos.

The contract under test (DESIGN.md §11): the sweep stack survives its
own faults.  Deterministic failures skip the retry ladder; hung units
are interrupted by their wall-clock deadline; poison units quarantine
into structured records while the sweep completes partial; injected
worker crashes and hangs (the :mod:`repro.experiments.chaos` harness)
are supervised away with results **byte-identical** to a clean run;
and artifact-write failures degrade caching/checkpointing instead of
killing the sweep.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time

import pytest

from repro.errors import (
    ConfigurationError,
    DeadlineMissError,
    ExperimentError,
    PolicyError,
    SuiteExecutionError,
    SweepInterrupted,
    UnitTimeoutError,
    WorkerCrashError,
)
from repro.experiments import chaos, parallel
from repro.experiments.cache import SuiteCache
from repro.experiments.chaos import (
    ChaosPlan,
    CrashChaos,
    HangChaos,
    WriteChaos,
)
from repro.experiments.resilience import (
    EXECUTION_DEFAULTS,
    QuarantinedCell,
    QuarantineStore,
    classify,
    is_transient,
    quarantine_report,
    retry_budget,
    set_execution_defaults,
    unit_deadline,
)
from repro.experiments.runner import bcwc_model, standard_taskset, sweep

pytestmark = pytest.mark.chaos

HORIZON = 400.0
POLICIES = ("static", "lpSTA")

needs_fork = pytest.mark.skipif(
    not parallel.fork_available(),
    reason="parallel executor needs fork()")


def workload(u: float, seed: int):
    return standard_taskset(4, u, seed), bcwc_model(0.5, seed)


def payloads(cells) -> list[str]:
    return [json.dumps(cell.to_payload()) for cell in cells]


@pytest.fixture(autouse=True)
def _pristine_process_state():
    """No chaos plan, default execution knobs, cold pool around tests."""
    yield
    chaos.uninstall()
    EXECUTION_DEFAULTS.unit_timeout = None
    EXECUTION_DEFAULTS.on_failure = "raise"
    parallel.shutdown_pool()


class TestClassification:
    def test_transient_types(self):
        assert is_transient(OSError("disk hiccup"))
        assert is_transient(MemoryError())
        assert is_transient(UnitTimeoutError("slow", timeout=1.0))
        assert is_transient(WorkerCrashError("dead", crashes=2))

    def test_library_errors_are_deterministic(self):
        assert not is_transient(PolicyError("bad speed"))
        assert not is_transient(DeadlineMissError("missed"))
        assert classify(SuiteExecutionError("wrapped")) == "deterministic"

    def test_wrapped_transient_cause_stays_transient(self):
        try:
            try:
                raise OSError("underneath")
            except OSError as inner:
                raise SuiteExecutionError("on top") from inner
        except SuiteExecutionError as exc:
            assert is_transient(exc)
            assert classify(exc) == "transient"

    def test_unknown_types_default_to_transient(self):
        # Retrying an unknown failure is wasteful at worst; failing
        # fast on a curable one loses results.
        assert is_transient(ValueError("who knows"))

    def test_retry_budget(self):
        assert retry_budget(OSError(), 3) == 3
        assert retry_budget(PolicyError("x"), 3) == 0

    def test_deterministic_failure_skips_the_backoff_ladder(self):
        calls = []

        def doomed(u: float, seed: int):
            calls.append((u, seed))
            raise DeadlineMissError("deterministic boom")

        with pytest.raises(DeadlineMissError):
            sweep((0.5,), doomed, POLICIES, n_tasksets=1,
                  horizon=HORIZON, max_retries=5, retry_backoff=0.01)
        # One attempt, not six: the failure is a pure function of the
        # seed, so retries cannot cure it.
        assert len(calls) == 1

    def test_transient_failure_still_burns_retries(self):
        calls = []

        def flaky(u: float, seed: int):
            calls.append((u, seed))
            raise OSError("transient boom")

        with pytest.raises(OSError):
            sweep((0.5,), flaky, POLICIES, n_tasksets=1,
                  horizon=HORIZON, max_retries=2, retry_backoff=0.01)
        assert len(calls) == 3


class TestUnitDeadline:
    def test_interrupts_a_hung_unit(self):
        started = time.monotonic()
        with pytest.raises(UnitTimeoutError) as exc:
            with unit_deadline(0.2, x=0.7, seed=42):
                time.sleep(30.0)
        assert time.monotonic() - started < 5.0
        assert exc.value.x == 0.7
        assert exc.value.workload_seed == 42
        assert exc.value.timeout == 0.2

    def test_noop_without_timeout(self):
        with unit_deadline(None):
            pass
        with unit_deadline(0.0):
            pass

    def test_disarms_after_the_unit(self):
        with unit_deadline(0.1, x=0.5, seed=1):
            pass
        time.sleep(0.15)  # an un-disarmed alarm would fire here

    def test_sweep_validates_unit_timeout(self):
        with pytest.raises(ExperimentError):
            sweep((0.5,), workload, POLICIES, n_tasksets=1,
                  horizon=HORIZON, unit_timeout=-1.0)

    def test_sweep_times_out_hung_unit_serially(self):
        def hung(u: float, seed: int):
            time.sleep(30.0)
            return workload(u, seed)

        started = time.monotonic()
        with pytest.raises(UnitTimeoutError):
            sweep((0.5,), hung, POLICIES, n_tasksets=1,
                  horizon=HORIZON, unit_timeout=0.2)
        assert time.monotonic() - started < 5.0


class TestExecutionDefaults:
    def test_sweep_consults_process_defaults(self):
        def hung(u: float, seed: int):
            time.sleep(30.0)
            return workload(u, seed)

        set_execution_defaults(unit_timeout=0.2)
        with pytest.raises(UnitTimeoutError):
            sweep((0.5,), hung, POLICIES, n_tasksets=1, horizon=HORIZON)

    def test_rejects_unknown_failure_policy(self):
        with pytest.raises(ExperimentError):
            set_execution_defaults(on_failure="shrug")
        with pytest.raises(ExperimentError):
            sweep((0.5,), workload, POLICIES, n_tasksets=1,
                  horizon=HORIZON, on_failure="shrug")


class TestQuarantine:
    def test_sweep_completes_past_a_poison_unit(self, tmp_path):
        def poisoned(u: float, seed: int):
            if u > 0.6:
                raise DeadlineMissError(f"poison u={u:g}")
            return workload(u, seed)

        reference = sweep((0.4,), workload, POLICIES, n_tasksets=2,
                          horizon=HORIZON)
        cells = sweep((0.4, 0.8), poisoned, POLICIES, n_tasksets=2,
                      horizon=HORIZON, checkpoint_dir=tmp_path,
                      on_failure="quarantine")
        # The clean cell is untouched (and byte-identical to a sweep
        # that never saw the poison).
        assert json.dumps(cells[0].to_payload()) == payloads(reference)[0]
        assert not cells[0].is_partial
        # The poisoned cell completes partial and declares its losses.
        assert cells[1].is_partial
        assert len(cells[1].quarantined) == 2
        record = QuarantinedCell.from_payload(cells[1].quarantined[0])
        assert record.error_type == "DeadlineMissError"
        assert record.classification == "deterministic"
        assert record.attempts == 1
        # Records are persisted for post-mortem and re-arming.
        store = QuarantineStore(tmp_path)
        persisted = store.load_all()
        assert len(persisted) == 2
        assert persisted[0].artifact is not None
        assert "poison" in quarantine_report(tmp_path)
        # A partial cell is never checkpointed as complete; the clean
        # cell is.
        assert (tmp_path / "cell_0000.json").exists()
        assert not (tmp_path / "cell_0001.json").exists()

    @needs_fork
    def test_parallel_quarantine_matches_serial_shape(self, tmp_path):
        def poisoned(u: float, seed: int):
            if u > 0.6:
                raise DeadlineMissError(f"poison u={u:g}")
            return workload(u, seed)

        kwargs = dict(n_tasksets=2, horizon=HORIZON,
                      on_failure="quarantine")
        serial = sweep((0.4, 0.8), poisoned, POLICIES, **kwargs)
        para = sweep((0.4, 0.8), poisoned, POLICIES, workers=2,
                     **kwargs)
        # Aggregates fold byte-identically; quarantine records carry
        # the same units (timestamps differ, so compare structure).
        assert (json.dumps(serial[0].to_payload())
                == json.dumps(para[0].to_payload()))
        assert para[1].is_partial and serial[1].is_partial

        def shape(cell):
            return [(r["index"], r["seed_pos"], r["error_type"],
                     r["classification"])
                    for r in cell.quarantined]

        assert shape(para[1]) == shape(serial[1])
        assert (serial[1].normalized == para[1].normalized)

    def test_quarantined_cell_round_trip(self):
        record = QuarantinedCell(
            index=3, x=0.7, seed=123, seed_pos=1, attempts=2,
            error_type="OSError", error_message="boom",
            classification="transient", fingerprint="abc")
        again = QuarantinedCell.from_payload(record.to_payload())
        assert again == record
        assert "cell 3" in record.describe()


class TestChaosPlans:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CrashChaos(probability=0.0)
        with pytest.raises(ConfigurationError):
            HangChaos(duration=-1.0)
        with pytest.raises(ConfigurationError):
            WriteChaos(probability=2.0)

    def test_describe_and_scoped_install(self):
        plan = ChaosPlan(seed=7, crash=CrashChaos(),
                         hang=HangChaos(duration=5.0, block_alarm=True),
                         write_error=WriteChaos(), marker_dir="/tmp/m")
        assert chaos.current() is None
        with chaos.active(plan) as installed:
            assert chaos.current() is installed
            text = plan.describe()
            assert "crash" in text and "blocking" in text
            assert "once" in text
        assert chaos.current() is None

    def test_at_most_once_markers(self, tmp_path):
        plan = ChaosPlan(seed=1, write_error=WriteChaos(),
                         marker_dir=str(tmp_path))
        with chaos.active(plan):
            with pytest.raises(OSError):
                chaos.on_artifact_write("cache", "entry.json")
            # The marker is spent: the same write now succeeds.
            chaos.on_artifact_write("cache", "entry.json")

    def test_no_plan_is_a_noop(self):
        chaos.on_unit_start(0.5, 1)
        chaos.on_artifact_write("cache", "whatever.json")


@needs_fork
class TestChaosCrashRecovery:
    def test_byte_identical_despite_worker_crashes(self, tmp_path):
        xs = (0.4, 0.7)
        reference = sweep(xs, workload, POLICIES, n_tasksets=2,
                          horizon=HORIZON)
        # Every unit's first run kills its worker (exit 137, an OOM
        # kill's signature); the at-most-once markers make every
        # re-dispatch run clean, so supervision must recover all of
        # them with byte-identical results.
        plan = ChaosPlan(seed=11, crash=CrashChaos(probability=1.0),
                         marker_dir=str(tmp_path))
        with chaos.active(plan):
            # max_retries=1: a unit whose first-ever dispatch lands in
            # solo mode spends one crash there before running clean.
            cells = sweep(xs, workload, POLICIES, n_tasksets=2,
                          horizon=HORIZON, workers=2, max_retries=1,
                          retry_backoff=0.01)
        assert payloads(cells) == payloads(reference)
        # The markers prove the crashes actually fired.
        assert list(tmp_path.glob("fired_crash_*"))

    def test_unrecoverable_crasher_is_quarantined(self):
        # No marker dir: the crash re-fires on every dispatch, so the
        # escalation ladder must converge on solo dispatch, attribute
        # the crash, and quarantine the unit as a WorkerCrashError —
        # completing the sweep with everything else intact.
        xs = (0.4, 0.7)
        plan_seed, doomed = _chaos_seed_firing_on_some_units(
            xs, probability=0.3)
        plan = ChaosPlan(seed=plan_seed,
                         crash=CrashChaos(probability=0.3))
        with chaos.active(plan):
            cells = sweep(xs, workload, POLICIES, n_tasksets=2,
                          horizon=HORIZON, workers=2, max_retries=0,
                          on_failure="quarantine")
        quarantined = [r for cell in cells for r in cell.quarantined]
        assert quarantined
        assert all(r["error_type"] == "WorkerCrashError"
                   for r in quarantined)
        assert {(r["x"], r["seed"]) for r in quarantined} == doomed
        # Every non-poisoned unit still folded.
        total = sum(len(c.normalized.get("static", [])) for c in cells)
        assert total == 4 - len(quarantined)


def _chaos_seed_firing_on_some_units(
        xs, *, probability: float) -> tuple[int, set]:
    """A chaos plan seed whose crash fires on 1..len-1 of the units.

    The draw is a pure hash, so the doomed set is computable up front;
    scanning seeds keeps the test independent of hash details.
    """
    from repro.experiments.chaos import _CRASH_SALT, _draw
    from repro.experiments.runner import taskset_seeds
    units = [(float(x), seed)
             for x in xs for seed in taskset_seeds(2002, 2)]
    for plan_seed in range(1000):
        doomed = {(x, seed) for x, seed in units
                  if _draw(plan_seed, _CRASH_SALT,
                           f"{x!r}:{seed}") < probability}
        if 0 < len(doomed) < len(units):
            return plan_seed, doomed
    raise AssertionError("no suitable chaos seed in 0..999")


@needs_fork
class TestChaosHangRecovery:
    def test_alarm_interruptible_hang_recovers(self, tmp_path):
        xs = (0.4, 0.7)
        reference = sweep(xs, workload, POLICIES, n_tasksets=2,
                          horizon=HORIZON)
        # Every unit hangs once; the in-worker SIGALRM deadline
        # interrupts it, the (transient) retry re-runs it clean.
        plan = ChaosPlan(seed=3,
                         hang=HangChaos(probability=1.0, duration=30.0),
                         marker_dir=str(tmp_path))
        started = time.monotonic()
        with chaos.active(plan):
            cells = sweep(xs, workload, POLICIES, n_tasksets=2,
                          horizon=HORIZON, workers=2, max_retries=1,
                          retry_backoff=0.01, unit_timeout=0.5)
        assert payloads(cells) == payloads(reference)
        # Recovery came from the deadline, not from waiting out 30 s
        # hangs.
        assert time.monotonic() - started < 25.0

    @pytest.mark.slow
    def test_watchdog_recovers_alarm_immune_hang(self, tmp_path):
        xs = (0.5,)
        reference = sweep(xs, workload, POLICIES, n_tasksets=1,
                          horizon=HORIZON)
        # block_alarm masks SIGALRM during the injected sleep — the
        # shape of a hang in non-Python code — so only the parent-side
        # stall watchdog can recover, by killing the wedged worker.
        plan = ChaosPlan(
            seed=9,
            hang=HangChaos(probability=1.0, duration=120.0,
                           block_alarm=True),
            marker_dir=str(tmp_path))
        started = time.monotonic()
        with chaos.active(plan):
            cells = sweep(xs, workload, POLICIES, n_tasksets=1,
                          horizon=HORIZON, workers=2, max_retries=1,
                          retry_backoff=0.01, unit_timeout=0.5)
        assert payloads(cells) == payloads(reference)
        assert time.monotonic() - started < 60.0


class TestDegradedWrites:
    def test_cache_write_failure_degrades_not_dies(self, tmp_path, capsys):
        plan = ChaosPlan(seed=2, write_error=WriteChaos(probability=1.0))
        reference = sweep((0.5,), workload, POLICIES, n_tasksets=2,
                          horizon=HORIZON)
        with chaos.active(plan):
            cells = sweep((0.5,), workload, POLICIES, n_tasksets=2,
                          horizon=HORIZON,
                          cache_dir=tmp_path / "cache",
                          workload_id="chaos-test")
        assert payloads(cells) == payloads(reference)
        assert "degraded" in capsys.readouterr().err
        assert not list((tmp_path / "cache").glob("*/*.json"))

    def test_checkpoint_write_failure_degrades_not_dies(
            self, tmp_path, capsys):
        plan = ChaosPlan(seed=2, write_error=WriteChaos(probability=1.0))
        reference = sweep((0.5,), workload, POLICIES, n_tasksets=2,
                          horizon=HORIZON)
        with chaos.active(plan):
            cells = sweep((0.5,), workload, POLICIES, n_tasksets=2,
                          horizon=HORIZON, checkpoint_dir=tmp_path / "ck")
        assert payloads(cells) == payloads(reference)
        assert "degraded" in capsys.readouterr().err
        assert not list((tmp_path / "ck").glob("cell_*.json"))

    def test_corrupt_cache_shard_is_self_healed(self, tmp_path):
        from repro.experiments.cache import PolicySummary
        cache = SuiteCache(tmp_path)
        summary = PolicySummary(normalized=0.5, misses=0, switches=3,
                                overruns=0, released=7, interventions=0,
                                dispatches=7)
        digest = "ab" + "0" * 62
        cache.put(digest, {"static": summary})
        path = tmp_path / "ab" / f"{digest}.json"
        assert path.exists()
        path.write_text("{not json")
        assert cache.get(digest) is None
        # The torn shard is unlinked, not left to re-corrupt every run.
        assert not path.exists()
        assert cache.self_healed == 1
        assert cache.corrupt == 1


class TestGracefulShutdown:
    def test_sigint_drains_and_resumes_byte_identically(self, tmp_path):
        xs = (0.4, 0.5, 0.6, 0.7)
        kwargs = dict(n_tasksets=2, horizon=HORIZON)
        reference = sweep(xs, workload, POLICIES, **kwargs)

        def slow_workload(u: float, seed: int):
            time.sleep(0.15)
            return workload(u, seed)

        before = signal.getsignal(signal.SIGINT)
        timer = threading.Timer(
            0.3, os.kill, (os.getpid(), signal.SIGINT))
        timer.start()
        try:
            with pytest.raises(SweepInterrupted) as exc:
                sweep(xs, slow_workload, POLICIES,
                      checkpoint_dir=tmp_path, **kwargs)
        finally:
            timer.cancel()
        assert exc.value.signal_number == signal.SIGINT
        assert exc.value.checkpoint_dir == str(tmp_path)
        done = sorted(tmp_path.glob("cell_*.json"))
        assert len(done) < len(xs)
        # The pre-sweep SIGINT disposition is restored on exit.
        assert signal.getsignal(signal.SIGINT) is before
        resumed = sweep(xs, workload, POLICIES, checkpoint_dir=tmp_path,
                        resume=True, **kwargs)
        assert payloads(resumed) == payloads(reference)
