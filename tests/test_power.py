"""Tests for repro.cpu.power models."""

import pytest

from repro.cpu.power import (
    CmosPowerModel,
    OperatingPoint,
    PolynomialPowerModel,
    TablePowerModel,
)
from repro.errors import ConfigurationError


class TestPolynomial:
    def test_cubic_values(self):
        model = PolynomialPowerModel(alpha=3.0)
        assert model.power(1.0) == pytest.approx(1.0)
        assert model.power(0.5) == pytest.approx(0.125)

    def test_static_floor(self):
        model = PolynomialPowerModel(alpha=3.0, static=0.1)
        assert model.power(0.5) == pytest.approx(0.225)

    def test_energy_integrates_power(self):
        model = PolynomialPowerModel(alpha=2.0)
        assert model.energy(0.5, duration=4.0) == pytest.approx(1.0)

    def test_energy_negative_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            PolynomialPowerModel().energy(0.5, -1.0)

    def test_convexity_beats_two_speeds(self):
        # Running work W at speed s for W/s costs s^2 * W (alpha=3);
        # splitting between a lower and higher speed must cost more
        # than the constant intermediate speed for the same work+time.
        model = PolynomialPowerModel(alpha=3.0)
        work, wall = 1.0, 2.0
        constant = model.power(0.5) * wall
        # Half the work at 0.25 (takes 2.0) is infeasible; use 0.3/0.9:
        # t1 * 0.3 + t2 * 0.9 = 1.0, t1 + t2 = 2.0 -> t1 = 4/3, t2 = 2/3.
        split = model.power(0.3) * (4 / 3) + model.power(0.9) * (2 / 3)
        assert split > constant

    def test_speed_out_of_range_rejected(self):
        model = PolynomialPowerModel()
        with pytest.raises(ConfigurationError):
            model.power(0.0)
        with pytest.raises(ConfigurationError):
            model.power(1.2)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            PolynomialPowerModel(alpha=0.5)
        with pytest.raises(ConfigurationError):
            PolynomialPowerModel(dynamic=0.0)
        with pytest.raises(ConfigurationError):
            PolynomialPowerModel(static=-1.0)

    def test_default_voltage_tracks_speed(self):
        assert PolynomialPowerModel().voltage(0.6) == pytest.approx(0.6)


class TestCmos:
    @pytest.fixture
    def model(self) -> CmosPowerModel:
        # The generic 4-level table: 25/50/75/100% at 2/3/4/5 V.
        return CmosPowerModel([
            OperatingPoint(0.25, 2.0),
            OperatingPoint(0.50, 3.0),
            OperatingPoint(0.75, 4.0),
            OperatingPoint(1.00, 5.0),
        ])

    def test_power_is_f_v_squared(self, model):
        # P(1.0) = c_eff * 5^2 * 1.0 * f_max(=1.0) = 25.
        assert model.power(1.0) == pytest.approx(25.0)
        assert model.power(0.25) == pytest.approx(2.0 * 2.0 * 0.25)

    def test_voltage_interpolation(self, model):
        assert model.voltage(0.375) == pytest.approx(2.5)

    def test_voltage_clamps_at_edges(self, model):
        assert model.voltage(0.1) == pytest.approx(2.0)
        assert model.voltage(1.0) == pytest.approx(5.0)

    def test_power_monotone_in_speed(self, model):
        speeds = [0.25, 0.4, 0.5, 0.6, 0.75, 0.9, 1.0]
        powers = [model.power(s) for s in speeds]
        assert powers == sorted(powers)

    def test_energy_per_work_decreases_with_speed(self, model):
        # The DVS premise: retiring one unit of work is cheaper slower.
        per_work = [model.power(s) / s for s in (0.25, 0.5, 0.75, 1.0)]
        assert per_work == sorted(per_work)

    def test_speeds_property(self, model):
        assert model.speeds == pytest.approx((0.25, 0.5, 0.75, 1.0))

    def test_duplicate_frequency_rejected(self):
        with pytest.raises(ConfigurationError):
            CmosPowerModel([OperatingPoint(1.0, 2.0),
                            OperatingPoint(1.0, 3.0)])

    def test_decreasing_voltage_rejected(self):
        with pytest.raises(ConfigurationError):
            CmosPowerModel([OperatingPoint(0.5, 3.0),
                            OperatingPoint(1.0, 2.0)])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            CmosPowerModel([])


class TestTable:
    @pytest.fixture
    def model(self) -> TablePowerModel:
        # XScale-style measured rows (mW).
        return TablePowerModel([
            (0.15, 80.0), (0.4, 170.0), (0.6, 400.0),
            (0.8, 900.0), (1.0, 1600.0)])

    def test_exact_points(self, model):
        assert model.power(0.6) == pytest.approx(400.0)
        assert model.power(1.0) == pytest.approx(1600.0)

    def test_interpolation(self, model):
        assert model.power(0.5) == pytest.approx(285.0)

    def test_clamp_below_first_point(self, model):
        assert model.power(0.05) == pytest.approx(80.0)

    def test_requires_coverage_of_full_speed(self):
        with pytest.raises(ConfigurationError):
            TablePowerModel([(0.5, 10.0)])

    def test_rejects_decreasing_power(self):
        with pytest.raises(ConfigurationError):
            TablePowerModel([(0.5, 20.0), (1.0, 10.0)])

    def test_rejects_duplicates(self):
        with pytest.raises(ConfigurationError):
            TablePowerModel([(0.5, 10.0), (0.5, 11.0), (1.0, 20.0)])
