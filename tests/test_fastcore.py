"""Compiled engine core: backend routing and byte identity (DESIGN.md §13).

The contract under test: the compiled core is purely an execution
strategy.  When the C extension is present and enabled, every eligible
run produces a :class:`SimulationResult` **bitwise identical** to the
interpreted engine's — including fault notes, governor interventions
and traces; anything the core cannot reproduce exactly (subclassed
simulators, non-EDF schedulers) falls through to the interpreted loop;
and a plain install (no extension, or ``REPRO_COMPILED=0`` /
``--no-compiled``) runs exactly as before with zero new dependencies.
``scripts/compiled_gate.py`` enforces the same contract on whole sweep
fingerprints in CI.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.cpu.profiles import ideal_processor, xscale_processor
from repro.experiments.runner import bcwc_model, standard_taskset
from repro.faults import FaultPlan
from repro.faults.plan import OverrunFault, TransitionFault
from repro.policies.registry import make_policy
from repro.sim import fastcore
from repro.sim.engine import Simulator, simulate
from repro.sim.scheduler import EDFScheduler

pytestmark = pytest.mark.compiled

needs_compiled = pytest.mark.skipif(
    not fastcore.compiled_available(),
    reason="compiled core not built (REPRO_COMPILE=1 pip install -e .)")

HORIZON = 400.0
SEED = 42


def _workload(n_tasks=6, utilization=0.7, seed=SEED):
    return standard_taskset(n_tasks, utilization, seed), \
        bcwc_model(0.5, seed)


def _fault_plan(seed=SEED):
    return FaultPlan(
        seed=seed,
        overrun=OverrunFault(factor=1.3, probability=0.3),
        transition=TransitionFault(stuck_probability=0.2))


def assert_results_identical(a, b):
    """Bitwise equality, with traces compared by content.

    ``TraceRecorder`` has no ``__eq__`` (dataclass equality would
    compare recorder objects by identity), so the trace field is
    compared segment-by-segment and note-by-note instead.
    """
    assert dataclasses.replace(a, trace=None) \
        == dataclasses.replace(b, trace=None)
    assert (a.trace is None) == (b.trace is None)
    if a.trace is not None:
        assert list(a.trace.segments) == list(b.trace.segments)
        assert list(a.trace.notes) == list(b.trace.notes)


def _run(policy_name, *, backend, faults=None, governed=False,
         processor=None, record_trace=False, seed=SEED):
    taskset, model = _workload(seed=seed)
    policy = make_policy(policy_name, governed=governed,
                         governor_margin=1.3 if governed else 1.0)
    with fastcore.forced(backend):
        return simulate(taskset, processor or ideal_processor(), policy,
                        model, horizon=HORIZON, faults=faults,
                        allow_misses=faults is not None,
                        record_trace=record_trace)


# ----------------------------------------------------------------------
# Routing: fallback, env override, eligibility
# ----------------------------------------------------------------------

def test_interpreted_fallback_without_extension(monkeypatch):
    """A plain install (extension absent) must run unchanged."""
    monkeypatch.setattr(fastcore, "_EXT", None)
    assert not fastcore.compiled_available()
    assert not fastcore.compiled_enabled()
    assert fastcore.slack_kernels() is None
    before = fastcore.RUN_COUNTS["interpreted"]
    result = _run("lpSTA", backend=None)
    assert result.jobs_completed > 0
    assert fastcore.RUN_COUNTS["interpreted"] == before + 1


@needs_compiled
def test_env_override_disables_compiled(monkeypatch):
    monkeypatch.setenv("REPRO_COMPILED", "0")
    assert not fastcore.compiled_enabled()
    before = dict(fastcore.RUN_COUNTS)
    result = _run("ccEDF", backend=None)
    assert result.jobs_completed > 0
    assert fastcore.RUN_COUNTS["compiled"] == before["compiled"]
    assert fastcore.RUN_COUNTS["interpreted"] \
        == before["interpreted"] + 1
    monkeypatch.setenv("REPRO_COMPILED", "1")
    assert fastcore.compiled_enabled()


@needs_compiled
def test_forced_override_beats_env(monkeypatch):
    monkeypatch.setenv("REPRO_COMPILED", "0")
    with fastcore.forced(True):
        assert fastcore.compiled_enabled()
    with fastcore.forced(False):
        assert not fastcore.compiled_enabled()
    assert not fastcore.compiled_enabled()


@needs_compiled
def test_compiled_core_engages():
    before = fastcore.RUN_COUNTS["compiled"]
    result = _run("lpSEH", backend=True)
    assert result.jobs_completed > 0
    assert fastcore.RUN_COUNTS["compiled"] == before + 1


@needs_compiled
def test_subclassed_simulator_stays_interpreted():
    """Exact-type eligibility: a subclass may override anything the C
    core inlines, so it must never be routed to the compiled loop."""

    class LoggingSimulator(Simulator):
        pass

    taskset, model = _workload()
    sim = LoggingSimulator(taskset, ideal_processor(),
                           make_policy("static"), model, horizon=HORIZON)
    assert fastcore._ineligible_reason(sim) is not None
    before = fastcore.RUN_COUNTS["compiled"]
    with fastcore.forced(True):
        result = sim.run()
    assert result.jobs_completed > 0
    assert fastcore.RUN_COUNTS["compiled"] == before


def test_core_info_shape():
    info = fastcore.core_info()
    assert set(info) == {"available", "enabled", "backend", "runs"}
    assert set(info["runs"]) == {"compiled", "interpreted"}
    if info["available"]:
        assert info["backend"] == "c-extension"


# ----------------------------------------------------------------------
# Byte identity: compiled == interpreted
# ----------------------------------------------------------------------

@needs_compiled
@pytest.mark.parametrize("policy", ["none", "static", "ccEDF",
                                    "lpSTA", "lpSEH"])
def test_results_identical_plain(policy):
    interpreted = _run(policy, backend=False)
    compiled = _run(policy, backend=True)
    assert_results_identical(interpreted, compiled)


@needs_compiled
def test_results_identical_faults_governor_trace():
    """The acceptance cell: seeded faults + safety governor + trace."""
    kwargs = dict(faults=_fault_plan(), governed=True, record_trace=True)
    interpreted = _run("lpSEH", backend=False, **kwargs)
    compiled = _run("lpSEH", backend=True, **kwargs)
    assert interpreted.overrun_jobs > 0  # the faults actually fired
    assert_results_identical(interpreted, compiled)


@needs_compiled
def test_results_identical_discrete_scale_with_overhead():
    """Quantized speed levels + transition overhead (xscale profile)."""
    interpreted = _run("ccEDF", backend=False,
                       processor=xscale_processor())
    compiled = _run("ccEDF", backend=True, processor=xscale_processor())
    assert interpreted.switch_count > 0
    assert_results_identical(interpreted, compiled)


@needs_compiled
def test_slack_kernels_identical():
    from repro.analysis.slack import (ActiveJob, SystemState, exact_slack,
                                      heuristic_slack, scale_tasks)
    taskset, _ = _workload()
    tasks = scale_tasks(taskset.tasks,
                        max(taskset.utilization, 1e-9))
    time = 23.0
    state = SystemState.build(
        time=time,
        active=tuple(
            ActiveJob(deadline=time + task.deadline - idx,
                      remaining_wcet=task.wcet * 0.4)
            for idx, task in enumerate(tasks[:3])),
        tasks=tasks,
        next_release={task.name: time + 1.0 + idx
                      for idx, task in enumerate(tasks)})
    with fastcore.forced(False):
        exact_i = exact_slack(state, window_cap_periods=2.0)
        heur_i = heuristic_slack(state)
    with fastcore.forced(True):
        exact_c = exact_slack(state, window_cap_periods=2.0)
        heur_c = heuristic_slack(state)
    assert exact_i == exact_c  # bitwise, not approx
    assert heur_i == heur_c


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------

def test_doctor_reports_backends(capsys):
    from repro.cli import main
    assert main(["doctor"]) == 0
    out = capsys.readouterr().out
    assert "numpy:" in out
    assert "batch engine:" in out
    assert "compiled core:" in out
    assert "default workers:" in out
    if fastcore.compiled_available():
        assert "c-extension" in out
    else:
        assert "not built" in out


@needs_compiled
def test_simulate_no_compiled_flag(capsys):
    from repro.cli import main
    before = fastcore.RUN_COUNTS["compiled"]
    try:
        assert main(["simulate", "--policy", "static", "--tasks", "3",
                     "--horizon", "50", "--no-compiled"]) == 0
    finally:
        fastcore.set_compiled_default(None)
    assert fastcore.RUN_COUNTS["compiled"] == before
    assert "policy=static" in capsys.readouterr().out
