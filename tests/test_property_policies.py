"""Property-based tests (hypothesis) for policy invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.power import PolynomialPowerModel
from repro.cpu.profiles import ideal_processor
from repro.policies.dra import DraPolicy
from repro.policies.feedback import FeedbackDvsPolicy
from repro.policies.registry import make_policy
from repro.policies.slack_sta import LpStaPolicy
from repro.sim.engine import simulate
from repro.tasks.arrivals import UniformJitterArrival
from repro.tasks.execution import BimodalExecution, UniformExecution
from repro.tasks.generators import generate_taskset

workload = st.fixed_dictionaries({
    "n": st.integers(min_value=2, max_value=5),
    "u": st.floats(min_value=0.3, max_value=1.0),
    "seed": st.integers(min_value=0, max_value=2**31 - 1),
    "low": st.floats(min_value=0.05, max_value=1.0),
})


def _taskset(params):
    return generate_taskset(params["n"], params["u"],
                            np.random.default_rng(params["seed"]))


@settings(max_examples=20, deadline=None)
@given(params=workload)
def test_feedback_never_misses_even_with_adversarial_demand(params):
    """The PID can be arbitrarily wrong; the safety floor must hold."""
    ts = _taskset(params)
    model = BimodalExecution(light=0.05, heavy=1.0, p_heavy=0.5,
                             seed=params["seed"])
    result = simulate(ts, ideal_processor(),
                      FeedbackDvsPolicy(kp=2.0, ki=0.5, kd=1.0),
                      model,
                      horizon=min(ts.default_horizon(), 1200.0))
    assert not result.missed


@settings(max_examples=20, deadline=None)
@given(params=workload)
def test_dra_alpha_queue_budget_conservation(params):
    """The alpha queue never over-promises canonical time.

    At every dispatch, the sum of remaining canonical budgets of all
    entries with deadline <= D, plus the canonical budgets of future
    jobs due by D, can never exceed the wall time left until D — the
    packing invariant of the canonical static schedule (the property
    whose violation caused a real deadline-miss bug).
    """
    ts = _taskset(params)
    violations: list[float] = []

    class CheckedDra(DraPolicy):
        def select_speed(self, job, ctx):
            speed = super().select_speed(job, ctx)
            d = max(e.deadline for e in self._entries.values()) \
                if self._entries else None
            if d is not None:
                total = sum(e.budget for e in self._entries.values()
                            if e.deadline <= d + 1e-9)
                future = 0.0
                for task in ctx.taskset:
                    nr = ctx.next_release_of(task.name)
                    deadline = nr + task.deadline
                    while deadline <= d + 1e-9:
                        future += task.wcet / self._static_speed
                        nr += task.period
                        deadline += task.period
                margin = (d - ctx.time) - (total + future)
                violations.append(margin)
            return speed

    result = simulate(ts, ideal_processor(), CheckedDra(),
                      UniformExecution(low=params["low"], high=1.0,
                                       seed=params["seed"]),
                      horizon=min(ts.default_horizon(), 1200.0))
    assert not result.missed
    assert all(m >= -1e-6 for m in violations)


@settings(max_examples=15, deadline=None)
@given(params=workload,
       jitter=st.floats(min_value=0.0, max_value=1.5))
def test_sporadic_no_misses_property(params, jitter):
    ts = _taskset(params)
    result = simulate(
        ts, ideal_processor(), make_policy("lpSTA"),
        UniformExecution(low=params["low"], high=1.0,
                         seed=params["seed"]),
        arrival_model=UniformJitterArrival(jitter=jitter,
                                           seed=params["seed"]),
        horizon=min(ts.default_horizon(), 1200.0))
    assert not result.missed


@settings(max_examples=25, deadline=None)
@given(alpha=st.floats(min_value=1.5, max_value=4.0),
       static=st.floats(min_value=0.0, max_value=2.0))
def test_critical_speed_minimises_energy_per_work(alpha, static):
    model = PolynomialPowerModel(alpha=alpha, static=static)
    s_star = model.critical_speed()
    best = model.power(s_star) / s_star
    for s in np.linspace(0.01, 1.0, 97):
        assert best <= model.power(float(s)) / float(s) + 1e-6


@settings(max_examples=12, deadline=None)
@given(params=workload)
def test_lpsta_speed_never_exceeds_static_baseline(params):
    ts = _taskset(params)
    policy = LpStaPolicy()
    result = simulate(ts, ideal_processor(), policy,
                      UniformExecution(low=params["low"], high=1.0,
                                       seed=params["seed"]),
                      horizon=min(ts.default_horizon(), 1200.0),
                      record_trace=True)
    baseline = policy.baseline_speed
    for seg in result.trace:
        if seg.kind.value == "run":
            assert seg.speed <= baseline + 1e-9
