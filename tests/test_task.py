"""Tests for repro.tasks.task.PeriodicTask."""

import pytest

from repro.errors import ConfigurationError
from repro.tasks.task import PeriodicTask


class TestConstruction:
    def test_basic_task(self):
        task = PeriodicTask("T1", wcet=2.0, period=10.0)
        assert task.wcet == 2.0
        assert task.period == 10.0
        assert task.deadline == 10.0  # implicit
        assert task.phase == 0.0
        assert task.bcet == 0.0

    def test_explicit_constrained_deadline(self):
        task = PeriodicTask("T1", wcet=2.0, period=10.0, deadline=5.0)
        assert task.deadline == 5.0
        assert not task.implicit_deadline

    def test_implicit_deadline_flag(self):
        assert PeriodicTask("T", 1.0, 10.0).implicit_deadline

    @pytest.mark.parametrize("wcet", [0.0, -1.0, float("inf"), float("nan")])
    def test_invalid_wcet_rejected(self, wcet):
        with pytest.raises(ConfigurationError):
            PeriodicTask("T", wcet=wcet, period=10.0)

    @pytest.mark.parametrize("period", [0.0, -5.0])
    def test_invalid_period_rejected(self, period):
        with pytest.raises(ConfigurationError):
            PeriodicTask("T", wcet=1.0, period=period)

    def test_deadline_beyond_period_rejected(self):
        with pytest.raises(ConfigurationError):
            PeriodicTask("T", wcet=1.0, period=10.0, deadline=11.0)

    def test_wcet_beyond_deadline_rejected(self):
        with pytest.raises(ConfigurationError):
            PeriodicTask("T", wcet=6.0, period=10.0, deadline=5.0)

    def test_negative_phase_rejected(self):
        with pytest.raises(ConfigurationError):
            PeriodicTask("T", wcet=1.0, period=10.0, phase=-1.0)

    def test_bcet_above_wcet_rejected(self):
        with pytest.raises(ConfigurationError):
            PeriodicTask("T", wcet=1.0, period=10.0, bcet=2.0)

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            PeriodicTask("", wcet=1.0, period=10.0)

    def test_frozen(self):
        task = PeriodicTask("T", 1.0, 10.0)
        with pytest.raises(AttributeError):
            task.wcet = 2.0


class TestDerivedProperties:
    def test_utilization(self):
        assert PeriodicTask("T", 2.0, 10.0).utilization == pytest.approx(0.2)

    def test_density_with_constrained_deadline(self):
        task = PeriodicTask("T", 2.0, 10.0, deadline=4.0)
        assert task.density == pytest.approx(0.5)

    def test_density_equals_utilization_for_implicit(self):
        task = PeriodicTask("T", 2.0, 10.0)
        assert task.density == task.utilization


class TestReleasePattern:
    def test_release_times(self):
        task = PeriodicTask("T", 1.0, 10.0, phase=3.0)
        assert task.release_time(0) == 3.0
        assert task.release_time(1) == 13.0
        assert task.release_time(5) == 53.0

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            PeriodicTask("T", 1.0, 10.0).release_time(-1)

    def test_absolute_deadline(self):
        task = PeriodicTask("T", 1.0, 10.0, deadline=6.0, phase=2.0)
        assert task.absolute_deadline(0) == 8.0
        assert task.absolute_deadline(2) == 28.0

    def test_next_release_before_phase(self):
        task = PeriodicTask("T", 1.0, 10.0, phase=5.0)
        assert task.next_release_at_or_after(0.0) == 5.0

    def test_next_release_exactly_at_release(self):
        task = PeriodicTask("T", 1.0, 10.0)
        assert task.next_release_at_or_after(20.0) == 20.0

    def test_next_release_between_releases(self):
        task = PeriodicTask("T", 1.0, 10.0)
        assert task.next_release_at_or_after(21.0) == 30.0

    def test_next_release_with_phase(self):
        task = PeriodicTask("T", 1.0, 7.0, phase=2.0)
        assert task.next_release_at_or_after(10.0) == 16.0


class TestScaled:
    def test_scaled_wcet(self):
        task = PeriodicTask("T", 2.0, 10.0, bcet=1.0)
        scaled = task.scaled(2.0)
        assert scaled.wcet == pytest.approx(4.0)
        assert scaled.bcet == pytest.approx(2.0)
        assert scaled.period == 10.0

    def test_scaled_rename(self):
        scaled = PeriodicTask("T", 2.0, 10.0).scaled(0.5, name="S")
        assert scaled.name == "S"
        assert scaled.wcet == pytest.approx(1.0)

    def test_scaled_invalid_factor(self):
        with pytest.raises(ConfigurationError):
            PeriodicTask("T", 2.0, 10.0).scaled(0.0)

    def test_scaled_beyond_deadline_rejected(self):
        # Scaling up so the WCET no longer fits must fail loudly.
        with pytest.raises(ConfigurationError):
            PeriodicTask("T", 6.0, 10.0).scaled(2.0)
