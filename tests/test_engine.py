"""Tests for the simulation engine against hand-computed schedules."""

import pytest

from repro.cpu.power import PolynomialPowerModel
from repro.cpu.processor import Processor
from repro.cpu.speed import ContinuousScale, DiscreteScale
from repro.cpu.transition import ConstantOverhead
from repro.errors import ConfigurationError, DeadlineMissError, PolicyError
from repro.policies.base import DvsPolicy
from repro.policies.none import NoDvsPolicy
from repro.policies.static_edf import StaticEdfPolicy
from repro.sim.engine import Simulator, simulate
from repro.sim.scheduler import RMScheduler
from repro.sim.tracing import SegmentKind
from repro.tasks.execution import ConstantExecution, WorstCaseExecution
from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet


class FixedSpeedPolicy(DvsPolicy):
    """Test helper: always returns one configured speed."""

    name = "fixed"

    def __init__(self, speed):
        super().__init__()
        self.speed = speed

    def select_speed(self, job, ctx):
        return self.speed


class TestFullSpeedSchedule:
    def test_single_task_timeline(self):
        ts = TaskSet([PeriodicTask("T", wcet=2.0, period=10.0)])
        result = simulate(ts, Processor(), NoDvsPolicy(),
                          WorstCaseExecution(), horizon=30.0,
                          record_trace=True)
        # Jobs at 0, 10, 20 each run [r, r+2] at speed 1.
        runs = [s for s in result.trace if s.kind == SegmentKind.RUN]
        assert [(s.start, s.end) for s in runs] == [
            (0.0, 2.0), (10.0, 12.0), (20.0, 22.0)]
        assert result.jobs_released == 3
        assert result.jobs_completed == 3
        assert result.busy_time == pytest.approx(6.0)
        assert result.idle_time == pytest.approx(24.0)

    def test_edf_preemption(self):
        # B#0 (d=20) starts; A releases at 5 with d=13 and preempts.
        ts = TaskSet([
            PeriodicTask("A", wcet=2.0, period=20.0, deadline=8.0,
                         phase=5.0),
            PeriodicTask("B", wcet=10.0, period=20.0),
        ])
        result = simulate(ts, Processor(), NoDvsPolicy(),
                          WorstCaseExecution(), horizon=20.0,
                          record_trace=True)
        runs = [(s.job, s.start, s.end) for s in result.trace
                if s.kind == SegmentKind.RUN]
        assert runs == [
            ("B#0", 0.0, 5.0),
            ("A#0", 5.0, 7.0),
            ("B#0", 7.0, 12.0),
        ]
        assert result.task_stats["B"].preemptions == 1

    def test_work_conservation(self, three_task_set):
        result = simulate(three_task_set, Processor(), NoDvsPolicy(),
                          ConstantExecution(0.6), horizon=80.0,
                          record_trace=True)
        for task in three_task_set:
            expected = sum(
                ConstantExecution(0.6).work(task, i)
                for i in range(int(80.0 / task.period)))
            assert result.task_stats[task.name].total_executed == \
                pytest.approx(expected, rel=1e-6)


class TestScaledSchedule:
    def test_half_speed_doubles_runtime_and_energy_drops(self):
        ts = TaskSet([PeriodicTask("T", wcet=2.0, period=10.0)])
        proc = Processor(power_model=PolynomialPowerModel(alpha=3.0))
        fast = simulate(ts, proc, FixedSpeedPolicy(1.0),
                        WorstCaseExecution(), horizon=10.0)
        slow = simulate(ts, proc, FixedSpeedPolicy(0.5),
                        WorstCaseExecution(), horizon=10.0)
        assert slow.busy_time == pytest.approx(2 * fast.busy_time)
        # Cubic power: E = s^2 * work -> quarter the energy.
        assert slow.busy_energy == pytest.approx(fast.busy_energy / 4)

    def test_static_policy_runs_at_utilization(self, two_task_set):
        result = simulate(two_task_set, Processor(), StaticEdfPolicy(),
                          WorstCaseExecution(), horizon=20.0)
        assert result.mean_speed() == pytest.approx(0.5)
        assert not result.deadline_misses

    def test_discrete_scale_quantizes_up(self):
        ts = TaskSet([PeriodicTask("T", wcet=3.0, period=10.0)])
        proc = Processor(scale=DiscreteScale([0.25, 0.5, 0.75, 1.0]))
        result = simulate(ts, proc, FixedSpeedPolicy(0.3),
                          WorstCaseExecution(), horizon=10.0)
        assert result.mean_speed() == pytest.approx(0.5)


class TestDeadlineHandling:
    def test_miss_raises_by_default(self):
        ts = TaskSet([PeriodicTask("T", wcet=5.0, period=10.0)])
        with pytest.raises(DeadlineMissError):
            simulate(ts, Processor(), FixedSpeedPolicy(0.25),
                     WorstCaseExecution(), horizon=20.0)

    def test_miss_recorded_when_allowed(self):
        ts = TaskSet([PeriodicTask("T", wcet=5.0, period=10.0)])
        result = simulate(ts, Processor(), FixedSpeedPolicy(0.25),
                          WorstCaseExecution(), horizon=20.0,
                          allow_misses=True)
        assert result.missed
        assert result.deadline_misses[0].task == "T"

    def test_infeasible_taskset_rejected_before_running(self):
        ts = TaskSet([PeriodicTask("A", 8.0, 10.0),
                      PeriodicTask("B", 5.0, 10.0)])
        with pytest.raises(Exception) as excinfo:
            simulate(ts, Processor(), NoDvsPolicy())
        assert "utilization" in str(excinfo.value)

    def test_incomplete_job_at_horizon_with_passed_deadline_is_miss(self):
        # One job of 6 units at the 0.05 floor retires only 5 units by
        # t=100, so its (deadline = horizon) obligation is missed.
        ts = TaskSet([PeriodicTask("T", wcet=6.0, period=100.0)])
        result = simulate(ts, Processor(), FixedSpeedPolicy(0.049),
                          WorstCaseExecution(), horizon=100.0,
                          allow_misses=True, check_feasibility=False)
        assert result.missed


class TestTransitionOverhead:
    def test_switch_costs_accounted(self):
        ts = TaskSet([PeriodicTask("T", wcet=2.0, period=10.0)])
        proc = Processor(
            scale=ContinuousScale(min_speed=0.05),
            transition_model=ConstantOverhead(switch_time=0.5,
                                              switch_energy=3.0))
        # Policy switches to 0.5 (from the initial 1.0) on first dispatch.
        result = simulate(ts, proc, FixedSpeedPolicy(0.5),
                          WorstCaseExecution(), horizon=10.0,
                          record_trace=True)
        assert result.switch_count == 1
        assert result.switch_energy == pytest.approx(3.0)
        assert result.switch_time == pytest.approx(0.5)
        switches = [s for s in result.trace
                    if s.kind == SegmentKind.SWITCH]
        assert len(switches) == 1
        # Job starts after the relock window and still completes.
        assert result.jobs_completed == 1

    def test_no_switch_no_cost(self):
        ts = TaskSet([PeriodicTask("T", wcet=2.0, period=10.0)])
        proc = Processor(
            transition_model=ConstantOverhead(switch_time=0.5,
                                              switch_energy=3.0))
        result = simulate(ts, proc, NoDvsPolicy(),
                          WorstCaseExecution(), horizon=20.0)
        assert result.switch_count == 0
        assert result.switch_energy == 0.0


class TestIdlePower:
    def test_idle_energy_integrates(self):
        ts = TaskSet([PeriodicTask("T", wcet=2.0, period=10.0)])
        proc = Processor(idle_power=0.1)
        result = simulate(ts, proc, NoDvsPolicy(), WorstCaseExecution(),
                          horizon=10.0)
        assert result.idle_time == pytest.approx(8.0)
        assert result.idle_energy == pytest.approx(0.8)
        assert result.total_energy == pytest.approx(
            result.busy_energy + 0.8)


class TestEngineValidation:
    def test_policy_returning_nan_rejected(self):
        ts = TaskSet([PeriodicTask("T", wcet=2.0, period=10.0)])
        with pytest.raises(PolicyError):
            simulate(ts, Processor(), FixedSpeedPolicy(float("nan")),
                     WorstCaseExecution(), horizon=10.0)

    def test_invalid_horizon_rejected(self):
        ts = TaskSet([PeriodicTask("T", wcet=2.0, period=10.0)])
        with pytest.raises(ConfigurationError):
            Simulator(ts, Processor(), NoDvsPolicy(), horizon=0.0)

    def test_phase_delays_first_release(self):
        ts = TaskSet([PeriodicTask("T", wcet=1.0, period=10.0,
                                   phase=4.0)])
        result = simulate(ts, Processor(), NoDvsPolicy(),
                          WorstCaseExecution(), horizon=10.0,
                          record_trace=True)
        runs = [s for s in result.trace if s.kind == SegmentKind.RUN]
        assert runs[0].start == pytest.approx(4.0)

    def test_rm_scheduler_integration(self):
        # Same U=1 pair: EDF fine, RM misses B.
        ts = TaskSet([PeriodicTask("A", 2.0, 4.0),
                      PeriodicTask("B", 5.0, 10.0)])
        edf = simulate(ts, Processor(), NoDvsPolicy(),
                       WorstCaseExecution(), horizon=20.0)
        assert not edf.missed
        rm = simulate(ts, Processor(), NoDvsPolicy(),
                      WorstCaseExecution(), horizon=20.0,
                      scheduler=RMScheduler(), allow_misses=True)
        assert rm.missed

    def test_results_reproducible(self, three_task_set, half_model):
        a = simulate(three_task_set, Processor(), NoDvsPolicy(),
                     half_model, horizon=80.0)
        b = simulate(three_task_set, Processor(), NoDvsPolicy(),
                     half_model, horizon=80.0)
        assert a.total_energy == b.total_energy
        assert a.jobs_completed == b.jobs_completed
