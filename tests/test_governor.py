"""Tests for the runtime safety governor (:mod:`repro.policies.governor`).

The acceptance property from the fault-matrix experiment, in miniature:
under WCET-overrun injection a raw reclaiming policy misses deadlines,
while the same policy wrapped in :class:`SafetyGovernor` (margin >= the
overrun factor, margin-inflated utilization <= 1) misses nothing.
"""

import pytest

from repro.cpu.profiles import ideal_processor
from repro.errors import ConfigurationError
from repro.experiments.runner import standard_taskset
from repro.faults import FaultPlan, OverrunFault
from repro.policies.governor import SafetyGovernor
from repro.policies.registry import make_policy
from repro.sim.engine import simulate
from repro.tasks.execution import model_for_bcwc_ratio

pytestmark = pytest.mark.faults

FACTOR = 1.4
UTILIZATION = 0.65  # margin-inflated utilization 0.91 stays feasible


def _run(policy, *, faults, horizon=1200.0, record_trace=False):
    taskset = standard_taskset(6, UTILIZATION, seed=3)
    model = model_for_bcwc_ratio(0.5, seed=3)
    return simulate(taskset, ideal_processor(), policy, model,
                    horizon=horizon, allow_misses=True, faults=faults,
                    record_trace=record_trace)


def _overrun_plan(seed=1):
    return FaultPlan(seed=seed, overrun=OverrunFault(factor=FACTOR))


class TestConstruction:
    def test_margin_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            SafetyGovernor(make_policy("ccEDF"), margin=0.9)

    def test_bad_window_cap_rejected(self):
        with pytest.raises(ConfigurationError):
            SafetyGovernor(make_policy("ccEDF"), window_cap_periods=0.0)

    def test_name_wraps_inner(self):
        gov = SafetyGovernor(make_policy("lpSTA"), margin=1.2)
        assert gov.name == "gov(lpSTA)"
        assert "margin=1.2" in gov.describe()

    def test_registry_integration(self):
        policy = make_policy("ccEDF", governed=True, governor_margin=1.3)
        assert isinstance(policy, SafetyGovernor)
        assert policy.inner.name == "ccEDF"


class TestSafetyProperty:
    @pytest.mark.parametrize("name", ["ccEDF", "lpSEH", "lpSTA"])
    def test_raw_policy_misses_governed_does_not(self, name):
        plan = _overrun_plan()
        raw = _run(make_policy(name), faults=plan)
        governed = _run(
            make_policy(name, governed=True, governor_margin=FACTOR),
            faults=plan)
        assert len(raw.deadline_misses) > 0
        assert len(governed.deadline_misses) == 0
        # Same injected workload in both runs.
        assert raw.overrun_jobs == governed.overrun_jobs > 0

    def test_interventions_reported_in_policy_metrics(self):
        governed = _run(
            make_policy("ccEDF", governed=True, governor_margin=FACTOR),
            faults=_overrun_plan())
        metrics = governed.policy_metrics
        assert metrics["interventions"] > 0
        assert metrics["dispatches"] >= metrics["interventions"]
        assert 0.0 < metrics["intervention_rate"] <= 1.0
        assert metrics["max_clamp"] > 0.0

    def test_interventions_pinned_to_trace(self):
        governed = _run(
            make_policy("ccEDF", governed=True, governor_margin=FACTOR),
            faults=_overrun_plan(), horizon=600.0, record_trace=True)
        notes = governed.trace.notes_of_kind("governor")
        assert notes
        assert "raised" in notes[0].detail

    def test_safety_costs_energy(self):
        plan = _overrun_plan()
        raw = _run(make_policy("ccEDF"), faults=plan)
        governed = _run(
            make_policy("ccEDF", governed=True, governor_margin=FACTOR),
            faults=plan)
        assert governed.total_energy > raw.total_energy


class TestTransparency:
    """Without faults and with margin 1, the governor must not change
    behaviour: the floor it computes is exactly the feasibility bound
    the reclaiming policies already respect."""

    @pytest.mark.parametrize("name", ["static", "ccEDF", "lpSTA"])
    def test_margin_one_no_faults_zero_misses(self, name):
        raw = _run(make_policy(name), faults=None)
        governed = _run(make_policy(name, governed=True), faults=None)
        assert len(governed.deadline_misses) == 0
        assert governed.jobs_completed == raw.jobs_completed

    def test_inner_metrics_forwarded_with_prefix(self):
        gov = SafetyGovernor(make_policy("ccEDF"), margin=1.0)

        class Probe:
            name = "probe"

            def metrics(self):
                return {"calls": 7.0}

        gov.inner = Probe()
        assert gov.metrics()["inner.calls"] == 7.0

    def test_delegates_lifecycle_to_inner(self):
        events = []

        class Recorder:
            name = "rec"

            def bind(self, taskset, processor):
                events.append("bind")

            def on_release(self, job, ctx):
                events.append("release")

            def on_completion(self, job, ctx):
                events.append("complete")

            def select_speed(self, job, ctx):
                return 1.0

            def metrics(self):
                return {}

        gov = SafetyGovernor(make_policy("none"), margin=1.0)
        gov.inner = Recorder()
        gov.on_release(None, None)
        gov.on_completion(None, None)
        assert events == ["release", "complete"]
