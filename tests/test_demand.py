"""Tests for repro.analysis.demand."""

import pytest

from repro.analysis.demand import (
    busy_window_end,
    dbf,
    dbf_task,
    deadlines_within,
    future_demand,
    future_demand_linear_bound,
)
from repro.errors import ConfigurationError
from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet


@pytest.fixture
def task() -> PeriodicTask:
    return PeriodicTask("T", wcet=2.0, period=10.0)


class TestDbf:
    def test_before_first_deadline(self, task):
        assert dbf_task(task, 9.9) == 0.0

    def test_at_first_deadline(self, task):
        assert dbf_task(task, 10.0) == 2.0

    def test_multiple_periods(self, task):
        assert dbf_task(task, 35.0) == 6.0  # deadlines at 10, 20, 30

    def test_constrained_deadline(self):
        task = PeriodicTask("T", wcet=2.0, period=10.0, deadline=4.0)
        assert dbf_task(task, 4.0) == 2.0
        assert dbf_task(task, 13.9) == 2.0
        assert dbf_task(task, 14.0) == 4.0

    def test_negative_interval_rejected(self, task):
        with pytest.raises(ConfigurationError):
            dbf_task(task, -1.0)

    def test_taskset_sum(self, two_task_set):
        # A: deadlines at 4,8,12,16,20; B: at 10, 20.
        assert dbf(two_task_set, 20.0) == pytest.approx(5 * 1.0 + 2 * 2.5)


class TestFutureDemand:
    def test_no_jobs_fit(self, task):
        # Next release 5, deadline at 15; d=14 fits nothing.
        assert future_demand(task, next_release=5.0, d=14.0) == 0.0

    def test_one_job_fits(self, task):
        assert future_demand(task, next_release=5.0, d=15.0) == 2.0

    def test_several_jobs(self, task):
        # Releases 5, 15, 25 with deadlines 15, 25, 35.
        assert future_demand(task, next_release=5.0, d=35.0) == 6.0

    def test_exact_boundary(self, task):
        assert future_demand(task, next_release=0.0, d=10.0) == 2.0
        assert future_demand(task, next_release=0.0, d=9.999) == 0.0


class TestLinearBound:
    @pytest.mark.parametrize("d", [5.0, 10.0, 14.9, 15.0, 27.3, 100.0])
    def test_dominates_true_demand_implicit(self, task, d):
        nr = 5.0
        assert future_demand_linear_bound(task, nr, d) >= \
            future_demand(task, nr, d) - 1e-12

    @pytest.mark.parametrize("d", [5.0, 9.0, 12.0, 19.0, 50.0])
    def test_dominates_true_demand_constrained(self, d):
        task = PeriodicTask("T", wcet=2.0, period=10.0, deadline=4.0)
        nr = 5.0
        assert future_demand_linear_bound(task, nr, d) >= \
            future_demand(task, nr, d) - 1e-12

    def test_zero_before_release(self, task):
        assert future_demand_linear_bound(task, 5.0, 4.0) == 0.0

    def test_linear_slope_is_utilization(self, task):
        b1 = future_demand_linear_bound(task, 0.0, 10.0)
        b2 = future_demand_linear_bound(task, 0.0, 20.0)
        assert b2 - b1 == pytest.approx(10.0 * task.utilization)


class TestDeadlinesWithin:
    def test_enumeration(self, two_task_set):
        nr = {"A": 4.0, "B": 10.0}
        points = deadlines_within(two_task_set.tasks, nr, 0.0, 20.0)
        assert points == [8.0, 12.0, 16.0, 20.0]

    def test_open_start_closed_end(self, task):
        points = deadlines_within([task], {"T": 0.0}, 10.0, 30.0)
        assert points == [20.0, 30.0]

    def test_empty_interval(self, task):
        assert deadlines_within([task], {"T": 0.0}, 10.0, 5.0) == []

    def test_dedup_across_tasks(self):
        a = PeriodicTask("A", 1.0, 10.0)
        b = PeriodicTask("B", 1.0, 5.0)
        points = deadlines_within([a, b], {"A": 0.0, "B": 0.0}, 0.0, 10.0)
        assert points == [5.0, 10.0]


class TestBusyWindow:
    def test_no_pending_work(self, two_task_set):
        nr = {"A": 4.0, "B": 10.0}
        end = busy_window_end(0.0, two_task_set.tasks, nr, start=0.0,
                              cap=100.0)
        assert end == 0.0

    def test_isolated_work_no_arrivals(self, task):
        end = busy_window_end(3.0, [task], {"T": 1000.0}, start=0.0,
                              cap=100.0)
        assert end == pytest.approx(3.0)

    def test_work_plus_one_arrival(self, task):
        # Pending 6; T releases at 5 (inside) adding 2 -> 8; next
        # release at 15 is outside the 8-window, so end = 8.
        end = busy_window_end(6.0, [task], {"T": 5.0}, start=0.0,
                              cap=100.0)
        assert end == pytest.approx(8.0)

    def test_cascade(self, task):
        # Pending 14: the window absorbs the release at 5 (14 -> 16),
        # which pulls in the release at 15 (16 -> 18); the next release
        # at 25 stays outside -> fixed point 18.
        end = busy_window_end(14.0, [task], {"T": 5.0}, start=0.0,
                              cap=100.0)
        assert end == pytest.approx(18.0)

    def test_cap_respected_at_full_load(self, saturated_task_set):
        nr = {"A": 0.0, "B": 0.0}
        end = busy_window_end(7.0, saturated_task_set.tasks, nr,
                              start=0.0, cap=50.0)
        assert end == 50.0

    def test_release_exactly_at_window_end_excluded(self, task):
        # Pending 5; release exactly at 5 is not inside [0, 5).
        end = busy_window_end(5.0, [task], {"T": 5.0}, start=0.0,
                              cap=100.0)
        assert end == pytest.approx(5.0)
