"""Tests for the YDS offline-optimal scheduler."""

import numpy as np
import pytest

from repro.analysis.yds import (
    ConcreteJob,
    IntensityStep,
    jobs_from_taskset,
    yds_optimal_energy,
    yds_schedule,
)
from repro.cpu.profiles import ideal_processor
from repro.errors import ConfigurationError
from repro.policies.registry import make_policy
from repro.sim.engine import simulate
from repro.tasks.execution import UniformExecution, WorstCaseExecution
from repro.tasks.generators import generate_taskset
from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet


class TestConcreteJob:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ConcreteJob(release=5.0, deadline=5.0, work=1.0)
        with pytest.raises(ConfigurationError):
            ConcreteJob(release=0.0, deadline=5.0, work=0.0)


class TestSchedule:
    def test_single_job(self):
        steps = yds_schedule([ConcreteJob(0.0, 10.0, 2.0)])
        assert len(steps) == 1
        assert steps[0].intensity == pytest.approx(0.2)
        assert steps[0].work == pytest.approx(2.0)

    def test_nested_critical_interval(self):
        # Inner tight job forms the first critical interval; the outer
        # job then spreads over the collapsed timeline.
        steps = yds_schedule([ConcreteJob(0.0, 10.0, 2.0),
                              ConcreteJob(4.0, 6.0, 1.8)])
        assert steps[0].intensity == pytest.approx(0.9)
        assert steps[1].intensity == pytest.approx(0.25)  # 2 / (10 - 2)

    def test_intensities_non_increasing(self):
        rng = np.random.default_rng(3)
        jobs = [ConcreteJob(r, r + 5 + 10 * rng.random(),
                            0.5 + rng.random())
                for r in rng.uniform(0, 50, size=20)]
        steps = yds_schedule(jobs)
        intensities = [s.intensity for s in steps]
        assert all(a >= b - 1e-9
                   for a, b in zip(intensities, intensities[1:]))

    def test_work_conserved(self):
        rng = np.random.default_rng(4)
        jobs = [ConcreteJob(r, r + 4 + 6 * rng.random(),
                            0.2 + rng.random())
                for r in rng.uniform(0, 40, size=15)]
        steps = yds_schedule(jobs)
        assert sum(s.work for s in steps) == pytest.approx(
            sum(j.work for j in jobs))

    def test_disjoint_jobs_each_spread(self):
        steps = yds_schedule([ConcreteJob(0.0, 4.0, 1.0),
                              ConcreteJob(10.0, 14.0, 1.0)])
        assert all(s.intensity == pytest.approx(0.25) for s in steps)

    def test_feasible_set_intensity_at_most_one(self):
        ts = generate_taskset(5, 0.9, np.random.default_rng(8))
        jobs = jobs_from_taskset(ts, WorstCaseExecution(), horizon=600.0)
        steps = yds_schedule(jobs)
        assert max(s.intensity for s in steps) <= 1.0 + 1e-9


class TestJobsFromTaskset:
    def test_only_due_jobs_included(self):
        ts = TaskSet([PeriodicTask("T", wcet=1.0, period=10.0)])
        jobs = jobs_from_taskset(ts, WorstCaseExecution(), horizon=25.0)
        # Releases at 0, 10, 20; the job released at 20 has deadline 30
        # outside the horizon.
        assert len(jobs) == 2

    def test_actual_work_used(self):
        ts = TaskSet([PeriodicTask("T", wcet=4.0, period=10.0)])
        model = UniformExecution(low=0.5, high=1.0, seed=1)
        jobs = jobs_from_taskset(ts, model, horizon=10.0)
        assert jobs[0].work == pytest.approx(model.work(ts[0], 0))


class TestOptimalEnergy:
    def test_lower_bounds_every_policy(self):
        ts = generate_taskset(5, 0.8, np.random.default_rng(21))
        model = UniformExecution(low=0.4, high=1.0, seed=21)
        proc = ideal_processor()
        horizon = 900.0
        optimal = yds_optimal_energy(ts, model, proc, horizon)
        for name in ("static", "ccEDF", "lpSEH", "lpSTA", "clairvoyant"):
            result = simulate(ts, proc, make_policy(name), model,
                              horizon=horizon)
            assert optimal <= result.total_energy + 1e-6, name

    def test_oracle_near_optimal(self):
        ts = generate_taskset(5, 0.6, np.random.default_rng(22))
        model = UniformExecution(low=0.4, high=1.0, seed=22)
        proc = ideal_processor()
        optimal = yds_optimal_energy(ts, model, proc, 900.0)
        oracle = simulate(ts, proc, make_policy("clairvoyant"), model,
                          horizon=900.0)
        # The per-dispatch oracle holds one speed between scheduling
        # points, so it cannot always match the fluid optimum exactly;
        # empirically it lands within a few percent on aggregate
        # (EXP-F9) and within ~20% on individual workloads.
        assert oracle.total_energy <= optimal * 1.20

    def test_empty_horizon(self):
        ts = TaskSet([PeriodicTask("T", wcet=1.0, period=100.0,
                                   phase=50.0)])
        assert yds_optimal_energy(ts, WorstCaseExecution(),
                                  ideal_processor(), 10.0) == 0.0
