"""Tests for repro.tasks.taskset.TaskSet."""

import pytest

from repro.errors import ConfigurationError, InfeasibleTaskSetError
from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            TaskSet([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            TaskSet([PeriodicTask("A", 1.0, 10.0),
                     PeriodicTask("A", 2.0, 20.0)])

    def test_iteration_preserves_order(self, three_task_set):
        assert [t.name for t in three_task_set] == ["A", "B", "C"]

    def test_len(self, three_task_set):
        assert len(three_task_set) == 3


class TestLookup:
    def test_by_index(self, two_task_set):
        assert two_task_set[0].name == "A"
        assert two_task_set[1].name == "B"

    def test_by_name(self, two_task_set):
        assert two_task_set["B"].period == 10.0

    def test_unknown_name_raises_keyerror(self, two_task_set):
        with pytest.raises(KeyError, match="no task named"):
            two_task_set["Z"]

    def test_contains(self, two_task_set):
        assert "A" in two_task_set
        assert "Z" not in two_task_set


class TestAggregates:
    def test_utilization(self, two_task_set):
        assert two_task_set.utilization == pytest.approx(0.5)

    def test_density_equals_utilization_for_implicit(self, two_task_set):
        assert two_task_set.density == pytest.approx(two_task_set.utilization)

    def test_min_max_period(self, three_task_set):
        assert three_task_set.min_period == 5.0
        assert three_task_set.max_period == 40.0

    def test_implicit_deadlines_flag(self, two_task_set):
        assert two_task_set.implicit_deadlines
        mixed = TaskSet([PeriodicTask("A", 1.0, 10.0, deadline=5.0)])
        assert not mixed.implicit_deadlines


class TestHyperperiod:
    def test_integer_periods(self, two_task_set):
        assert two_task_set.hyperperiod() == pytest.approx(20.0)

    def test_fractional_periods(self):
        ts = TaskSet([PeriodicTask("A", 0.1, 2.5),
                      PeriodicTask("B", 0.1, 1.5)])
        assert ts.hyperperiod() == pytest.approx(7.5)

    def test_single_task(self):
        ts = TaskSet([PeriodicTask("A", 1.0, 7.0)])
        assert ts.hyperperiod() == pytest.approx(7.0)


class TestHorizon:
    def test_default_horizon_at_least_one_hyperperiod(self, two_task_set):
        horizon = two_task_set.default_horizon()
        assert horizon >= two_task_set.hyperperiod()

    def test_default_horizon_covers_min_jobs(self):
        ts = TaskSet([PeriodicTask("A", 1.0, 10.0)])
        horizon = ts.default_horizon(min_jobs_per_task=20)
        assert horizon >= 20 * 10.0

    def test_horizon_includes_phase(self):
        ts = TaskSet([PeriodicTask("A", 1.0, 10.0, phase=100.0)])
        assert ts.default_horizon() > 100.0


class TestFeasibility:
    def test_feasible_set_passes(self, two_task_set):
        two_task_set.assert_feasible_edf()  # must not raise

    def test_saturated_set_passes(self, saturated_task_set):
        saturated_task_set.assert_feasible_edf()

    def test_overloaded_set_rejected(self):
        ts = TaskSet([PeriodicTask("A", 6.0, 10.0),
                      PeriodicTask("B", 6.0, 10.0)])
        with pytest.raises(InfeasibleTaskSetError):
            ts.assert_feasible_edf()


class TestScaling:
    def test_scaled_to_utilization(self, two_task_set):
        scaled = two_task_set.scaled_to_utilization(0.9)
        assert scaled.utilization == pytest.approx(0.9)
        # Periods unchanged, proportions preserved.
        assert scaled[0].period == two_task_set[0].period
        ratio0 = scaled[0].wcet / two_task_set[0].wcet
        ratio1 = scaled[1].wcet / two_task_set[1].wcet
        assert ratio0 == pytest.approx(ratio1)

    def test_invalid_target_rejected(self, two_task_set):
        with pytest.raises(ConfigurationError):
            two_task_set.scaled_to_utilization(0.0)


class TestDescribe:
    def test_describe_contains_all_tasks(self, three_task_set):
        text = three_task_set.describe()
        for task in three_task_set:
            assert task.name in text
        assert "U=0.75" in text
