"""Property-based tests (hypothesis) for the analysis layer."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis.demand import (
    dbf_task,
    future_demand,
    future_demand_linear_bound,
)
from repro.analysis.slack import (
    ActiveJob,
    SystemState,
    allotted_speed,
    exact_slack,
    heuristic_slack,
    stretch_speed,
)
from repro.tasks.task import PeriodicTask


# -- strategies --------------------------------------------------------------

periods = st.floats(min_value=1.0, max_value=1000.0,
                    allow_nan=False, allow_infinity=False)


@st.composite
def tasks(draw, name="T"):
    period = draw(periods)
    wcet = draw(st.floats(min_value=0.001, max_value=1.0)) * period
    return PeriodicTask(name, wcet=wcet, period=period)


@st.composite
def analysis_states(draw):
    """A consistent (feasible-utilization) state with active jobs."""
    n = draw(st.integers(min_value=1, max_value=4))
    task_list = []
    utilization_left = 1.0
    for i in range(n):
        period = draw(st.floats(min_value=2.0, max_value=200.0))
        u = draw(st.floats(min_value=0.01, max_value=0.9))
        u = min(u, utilization_left)
        assume(u > 0.005)
        utilization_left -= u
        task_list.append(
            PeriodicTask(f"T{i}", wcet=u * period, period=period))
    t = draw(st.floats(min_value=0.0, max_value=100.0))
    active = []
    next_release = {}
    for task in task_list:
        release = task.next_release_at_or_after(t)
        has_active = draw(st.booleans())
        if has_active and release >= task.period:
            prev_release = release - task.period
            deadline = prev_release + task.deadline
            if deadline > t:
                frac = draw(st.floats(min_value=0.0, max_value=1.0))
                active.append(ActiveJob(deadline=deadline,
                                        remaining_wcet=frac * task.wcet))
        next_release[task.name] = max(release, t)
    assume(active)
    return SystemState.build(time=t, active=active, tasks=task_list,
                             next_release=next_release)


# -- demand properties --------------------------------------------------------

@given(task=tasks(), interval=st.floats(min_value=0.0, max_value=1e4))
def test_dbf_monotone_nonnegative(task, interval):
    value = dbf_task(task, interval)
    assert value >= 0.0
    assert dbf_task(task, interval + task.period) >= value


@given(task=tasks(),
       nr=st.floats(min_value=0.0, max_value=1e3),
       d=st.floats(min_value=0.0, max_value=1e4))
def test_linear_bound_dominates_future_demand(task, nr, d):
    exact = future_demand(task, nr, d)
    bound = future_demand_linear_bound(task, nr, d)
    assert bound >= exact - 1e-9 * max(1.0, exact)


@given(task=tasks(), nr=st.floats(min_value=0.0, max_value=1e3),
       d=st.floats(min_value=0.0, max_value=1e4),
       delta=st.floats(min_value=0.0, max_value=1e3))
def test_future_demand_monotone_in_deadline(task, nr, d, delta):
    assert future_demand(task, nr, d + delta) >= future_demand(task, nr, d)


# -- slack properties ----------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(state=analysis_states())
def test_heuristic_never_exceeds_exact(state):
    assert heuristic_slack(state) <= exact_slack(state) + 1e-6


@settings(max_examples=60, deadline=None)
@given(state=analysis_states())
def test_slack_nonnegative_and_finite(state):
    for slack in (exact_slack(state), heuristic_slack(state)):
        assert slack >= 0.0
        assert math.isfinite(slack)


@settings(max_examples=60, deadline=None)
@given(state=analysis_states())
def test_slack_bounded_by_earliest_deadline_headroom(state):
    """No job can be granted more time than exists before d_J."""
    headroom = state.earliest_deadline - state.time
    assert exact_slack(state) <= headroom + 1e-9


@settings(max_examples=40, deadline=None)
@given(state=analysis_states(),
       shrink=st.floats(min_value=0.0, max_value=0.5))
def test_slack_monotone_in_pending_work(state, shrink):
    """Reducing an active budget can only increase the slack."""
    base = exact_slack(state)
    reduced_active = [
        ActiveJob(j.deadline, j.remaining_wcet * (1.0 - shrink))
        for j in state.active]
    reduced = SystemState.build(state.time, reduced_active, state.tasks,
                                state.next_release)
    assert exact_slack(reduced) >= base - 1e-9


# -- speed rules ----------------------------------------------------------------

@given(rem=st.floats(min_value=1e-6, max_value=1e3),
       slack=st.floats(min_value=0.0, max_value=1e4))
def test_stretch_speed_fits_budget_in_window(rem, slack):
    speed = stretch_speed(rem, slack)
    assert 0.0 < speed <= 1.0
    # Running at this speed finishes within rem + slack.
    assert rem / speed <= rem + slack + 1e-6 * (rem + slack)


@given(rem=st.floats(min_value=1e-6, max_value=1e3),
       baseline=st.floats(min_value=0.01, max_value=1.0),
       slack=st.floats(min_value=0.0, max_value=1e4))
def test_allotted_speed_within_baseline_and_window(rem, baseline, slack):
    speed = allotted_speed(rem, baseline, slack)
    assert 0.0 < speed <= baseline + 1e-12
    assert rem / speed <= rem / baseline + slack + 1e-6


@given(rem=st.floats(min_value=1e-6, max_value=1e3),
       slack_a=st.floats(min_value=0.0, max_value=1e3),
       slack_b=st.floats(min_value=0.0, max_value=1e3))
def test_stretch_speed_monotone_in_slack(rem, slack_a, slack_b):
    lo, hi = sorted((slack_a, slack_b))
    assert stretch_speed(rem, hi) <= stretch_speed(rem, lo) + 1e-12
