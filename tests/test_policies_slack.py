"""Behavioural tests for the paper's policies: lpSTA, lpSEH, clairvoyant."""

import pytest

from repro.errors import ConfigurationError
from repro.policies.clairvoyant import ClairvoyantPolicy
from repro.policies.slack_seh import LpSehPolicy
from repro.policies.slack_sta import LpStaPolicy
from repro.sim.engine import simulate
from repro.sim.tracing import SegmentKind
from repro.tasks.execution import (
    BimodalExecution,
    ConstantExecution,
    UniformExecution,
    WorstCaseExecution,
)
from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet


class TestLpSta:
    def test_worst_case_runs_at_static_speed(self, two_task_set,
                                             processor):
        # With WCET demand the static baseline is tight: no slack ever
        # appears, so the policy runs at exactly U throughout.
        result = simulate(two_task_set, processor, LpStaPolicy(),
                          WorstCaseExecution(), horizon=40.0)
        assert result.mean_speed() == pytest.approx(0.5, abs=1e-6)
        assert not result.missed

    def test_speed_never_exceeds_static_baseline(self, two_task_set,
                                                 processor, half_model):
        result = simulate(two_task_set, processor, LpStaPolicy(),
                          half_model, horizon=40.0, record_trace=True)
        for seg in result.trace:
            if seg.kind == SegmentKind.RUN:
                assert seg.speed <= 0.5 + 1e-9

    def test_early_completions_push_speed_below_baseline(
            self, two_task_set, processor):
        result = simulate(two_task_set, processor, LpStaPolicy(),
                          ConstantExecution(0.4), horizon=40.0)
        assert result.mean_speed() < 0.5
        assert not result.missed

    def test_analysis_called_per_dispatch(self, two_task_set, processor,
                                          half_model):
        policy = LpStaPolicy()
        result = simulate(two_task_set, processor, policy, half_model,
                          horizon=40.0)
        assert policy.analysis_calls >= result.jobs_completed

    def test_binding_reports_baseline(self, two_task_set, processor):
        policy = LpStaPolicy()
        policy.bind(two_task_set, processor)
        assert policy.baseline_speed == pytest.approx(0.5)

    def test_greedy_baseline_variant(self, two_task_set, processor,
                                     half_model):
        greedy = LpStaPolicy(baseline="full")
        assert greedy.name == "lpSTA-greedy"
        result = simulate(two_task_set, processor, greedy, half_model,
                          horizon=40.0)
        assert not result.missed

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            LpStaPolicy(window_cap_periods=0.0)
        with pytest.raises(ConfigurationError):
            LpStaPolicy(baseline="bogus")


class TestLpSeh:
    def test_worst_case_runs_at_static_speed(self, two_task_set,
                                             processor):
        result = simulate(two_task_set, processor, LpSehPolicy(),
                          WorstCaseExecution(), horizon=40.0)
        assert result.mean_speed() == pytest.approx(0.5, abs=1e-6)

    def test_never_slower_than_lpsta(self, three_task_set, processor,
                                     half_model):
        # The heuristic under-estimates slack, so pointwise it can only
        # run at or above lpSTA's speed; aggregate busy time reflects it.
        sta = simulate(three_task_set, processor, LpStaPolicy(),
                       half_model, horizon=80.0)
        seh = simulate(three_task_set, processor, LpSehPolicy(),
                       half_model, horizon=80.0)
        assert seh.mean_speed() >= sta.mean_speed() - 1e-6

    def test_no_misses_on_bursty_demand(self, three_task_set, processor):
        result = simulate(three_task_set, processor, LpSehPolicy(),
                          BimodalExecution(light=0.1, heavy=1.0,
                                           p_heavy=0.4, seed=11),
                          horizon=400.0)
        assert not result.missed


class TestClairvoyant:
    def test_constant_demand_runs_at_actual_utilization(self, processor):
        # Constant 50% demand: the YDS intensity settles at the actual
        # utilization 0.25 for a U=0.5 set.
        ts = TaskSet([PeriodicTask("A", wcet=2.0, period=10.0),
                      PeriodicTask("B", wcet=3.0, period=10.0)])
        result = simulate(ts, processor, ClairvoyantPolicy(),
                          ConstantExecution(0.5), horizon=40.0)
        assert result.mean_speed() == pytest.approx(0.25, abs=0.02)
        assert not result.missed

    def test_beats_every_online_policy(self, three_task_set, processor):
        model = UniformExecution(low=0.3, high=1.0, seed=17)
        oracle = simulate(three_task_set, processor, ClairvoyantPolicy(),
                          model, horizon=200.0)
        for policy in (LpStaPolicy(), LpSehPolicy()):
            online = simulate(three_task_set, processor, policy, model,
                              horizon=200.0)
            assert oracle.total_energy <= online.total_energy * 1.02

    def test_no_misses(self, three_task_set, processor):
        result = simulate(three_task_set, processor, ClairvoyantPolicy(),
                          UniformExecution(low=0.2, high=1.0, seed=23),
                          horizon=400.0)
        assert not result.missed
