"""Engine robustness: reuse, determinism, and boundary conditions."""

import pytest

from repro.cpu.processor import Processor
from repro.errors import DeadlineMissError
from repro.policies.registry import make_policy
from repro.sim.engine import Simulator, simulate
from repro.tasks.execution import UniformExecution, WorstCaseExecution
from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet


class TestSimulatorReuse:
    def test_run_twice_identical(self, three_task_set, half_model,
                                 processor):
        sim = Simulator(three_task_set, processor, make_policy("lpSTA"),
                        half_model, horizon=80.0)
        first = sim.run()
        second = sim.run()
        assert first.total_energy == second.total_energy
        assert first.jobs_completed == second.jobs_completed
        assert first.switch_count == second.switch_count

    def test_policy_instance_reusable_across_workloads(self, processor,
                                                       half_model):
        policy = make_policy("ccEDF")
        a = TaskSet([PeriodicTask("A", 1.0, 5.0)])
        b = TaskSet([PeriodicTask("B", 2.0, 8.0),
                     PeriodicTask("C", 1.0, 4.0)])
        ra = simulate(a, processor, policy, half_model, horizon=40.0)
        rb = simulate(b, processor, policy, half_model, horizon=40.0)
        assert not ra.missed and not rb.missed
        # Re-running the first workload reproduces its result exactly.
        ra2 = simulate(a, processor, policy, half_model, horizon=40.0)
        assert ra2.total_energy == ra.total_energy


class TestBoundaries:
    def test_horizon_shorter_than_first_period(self, processor):
        ts = TaskSet([PeriodicTask("T", 1.0, 100.0)])
        result = simulate(ts, processor, make_policy("none"),
                          WorstCaseExecution(), horizon=5.0)
        assert result.jobs_released == 1
        assert result.jobs_completed == 1

    def test_release_exactly_at_horizon_not_created(self, processor):
        ts = TaskSet([PeriodicTask("T", 1.0, 10.0)])
        result = simulate(ts, processor, make_policy("none"),
                          WorstCaseExecution(), horizon=20.0)
        # Releases at 0 and 10; the one at 20 is outside.
        assert result.jobs_released == 2

    def test_all_phases_in_future(self, processor):
        ts = TaskSet([PeriodicTask("T", 1.0, 10.0, phase=50.0)])
        result = simulate(ts, processor, make_policy("lpSEH"),
                          WorstCaseExecution(), horizon=100.0)
        assert result.jobs_released == 5
        assert result.idle_time >= 50.0
        assert not result.missed

    def test_single_job_workload(self, processor):
        ts = TaskSet([PeriodicTask("T", 3.0, 1000.0)])
        result = simulate(ts, processor, make_policy("lpSTA"),
                          WorstCaseExecution(), horizon=100.0,
                          record_trace=True)
        assert result.jobs_completed == 1
        assert not result.missed

    def test_miss_error_carries_context(self, processor):
        ts = TaskSet([PeriodicTask("T", 9.0, 10.0)])

        class TooSlow(make_policy("none").__class__):
            def select_speed(self, job, ctx):
                return 0.5

        with pytest.raises(DeadlineMissError) as excinfo:
            simulate(ts, processor, TooSlow(), WorstCaseExecution(),
                     horizon=20.0)
        err = excinfo.value
        assert err.task == "T"
        assert err.deadline == pytest.approx(10.0)


class TestDeterminismAcrossPolicies:
    def test_same_workload_same_jobs(self, three_task_set, processor):
        model = UniformExecution(low=0.4, high=1.0, seed=99)
        released = set()
        for name in ("none", "static", "lpSTA"):
            result = simulate(three_task_set, processor,
                              make_policy(name), model, horizon=80.0)
            released.add(result.jobs_released)
        # Identical release pattern regardless of speed decisions.
        assert len(released) == 1
