"""Profiling layer: phase timers, budget invariant, fork-safe fold.

The contracts under test (DESIGN.md §15):

* the profiler is disabled by default and records nothing when off;
* phase self times telescope exactly — the sum of every phase's
  ``self_ns`` equals the root frames' total to the nanosecond, which
  is why the manifest's time budget sums to attributed wall time by
  construction;
* telemetry spans nest correctly (same-name and distinct-name), since
  the profiler rides next to them on the same seams;
* a profiled sweep is byte-identical to an unprofiled one, serial and
  parallel folds agree on deterministic phase counts, and the
  attributed wall tracks the measured wall within epsilon;
* the report layer round-trips collapsed stacks, renders a flame
  tree, emits a well-formed Chrome trace, and the schema-5 ``profile``
  block survives manifest and registry round-trips.
"""

from __future__ import annotations

import hashlib
import json
import time

import pytest

from repro.experiments.parallel import fork_available, shutdown_pool
from repro.experiments.runner import bcwc_model, standard_taskset, sweep
from repro.profiling import PROFILER, PhaseProfiler
from repro.profiling.report import (
    category_of,
    chrome_profile_trace,
    diff_budgets,
    profile_block,
    read_collapsed,
    render_budget,
    render_budget_diff,
    render_flame,
    write_collapsed,
)
from repro.telemetry import TELEMETRY, Telemetry
from repro.telemetry.manifest import MANIFEST_SCHEMA, RunManifest
from repro.telemetry.registry import (
    compare_records,
    record_from_manifest,
    render_compare,
    render_record,
)

pytestmark = pytest.mark.profile

XS = (0.3, 0.7)
N_TASKSETS = 2
HORIZON = 200.0
POLICIES = ("none", "lpSTA")


@pytest.fixture(autouse=True)
def clean_profiler():
    """Every test starts and ends with a pristine, disabled profiler."""
    PROFILER.configure(enabled=False)
    PROFILER.reset()
    TELEMETRY.configure(enabled=False)
    TELEMETRY.reset()
    yield
    PROFILER.configure(enabled=False)
    PROFILER.reset()
    TELEMETRY.configure(enabled=False)
    TELEMETRY.reset()


def workload(u: float, seed: int):
    return standard_taskset(5, u, seed), bcwc_model(0.5, seed)


def fingerprint(cells) -> str:
    digest = hashlib.blake2b(digest_size=16)
    for cell in cells:
        digest.update(json.dumps(cell.to_payload()).encode())
    return digest.hexdigest()


def run_sweep(workers: int = 1):
    try:
        return sweep(XS, workload, POLICIES, n_tasksets=N_TASKSETS,
                     horizon=HORIZON, workers=workers,
                     workload_id="profile-test")
    finally:
        if workers > 1:
            shutdown_pool()


class TestPhaseTimers:
    def test_disabled_by_default_records_nothing(self):
        prof = PhaseProfiler()
        assert prof.enabled is False
        with prof.phase("engine.run"):
            pass
        with prof.sample_unit():
            pass
        assert prof.snapshot() == {"phases": {}, "samples": {}}

    def test_self_time_telescopes_exactly(self):
        prof = PhaseProfiler()
        prof.configure(enabled=True)
        prof.push("root")
        prof.push("a")
        time.sleep(0.001)
        prof.pop()
        prof.push("b")
        prof.push("c")
        time.sleep(0.001)
        prof.pop()
        prof.pop()
        prof.pop()
        phases = prof.snapshot()["phases"]
        total_self = sum(rec["self_ns"] for rec in phases.values())
        # Integer-exact, not approximate: every nanosecond of the root
        # frame is either its own self time or some descendant's.
        assert total_self == phases["root"]["total_ns"]
        assert phases["b"]["self_ns"] == (phases["b"]["total_ns"]
                                          - phases["c"]["total_ns"])
        assert all(rec["count"] == 1 for rec in phases.values())

    def test_delta_then_merge_is_identity(self):
        prof = PhaseProfiler()
        prof.configure(enabled=True)
        with prof.phase("engine.run"):
            pass
        before = prof.snapshot()
        with prof.phase("engine.run"):
            with prof.phase("slack.exact"):
                pass
        delta = prof.delta_since(before)
        assert delta["phases"]["engine.run"]["count"] == 1
        assert delta["phases"]["slack.exact"]["count"] == 1
        # Folding the delta into a registry holding `before` must
        # reconstruct the full state — the cross-process contract.
        other = PhaseProfiler()
        other.configure(enabled=True)
        with other.phase("engine.run"):
            pass
        other._phases["engine.run"] = [
            before["phases"]["engine.run"]["count"],
            before["phases"]["engine.run"]["total_ns"],
            before["phases"]["engine.run"]["self_ns"]]
        other.merge_snapshot(delta)
        assert other.snapshot()["phases"] == prof.snapshot()["phases"]

    def test_merge_ignored_when_disabled(self):
        prof = PhaseProfiler()
        prof.merge_snapshot({"phases": {"engine.run": {
            "count": 1, "total_ns": 5, "self_ns": 5}}})
        assert prof.snapshot() == {"phases": {}, "samples": {}}

    def test_timeline_cap_counts_drops(self, monkeypatch):
        import repro.profiling.core as core
        monkeypatch.setattr(core, "TIMELINE_CAP", 2)
        prof = PhaseProfiler()
        prof.configure(enabled=True, timeline=True)
        for _ in range(5):
            with prof.phase("engine.run"):
                pass
        assert len(prof.timeline_events()) == 2
        assert prof.timeline_dropped == 3


class TestTelemetrySpans:
    def test_distinct_spans_nest(self):
        tele = Telemetry()
        tele.configure(enabled=True)
        with tele.span("outer"):
            with tele.span("inner"):
                time.sleep(0.001)
        spans = tele.snapshot()["spans"]
        assert spans["outer"]["count"] == 1
        assert spans["inner"]["count"] == 1
        # Telemetry spans are inclusive timers: the outer span's wall
        # contains the inner's (profiler self times are the exclusive
        # counterpart).
        assert spans["outer"]["wall_s"] >= spans["inner"]["wall_s"]

    def test_same_name_spans_nest_without_double_close(self):
        tele = Telemetry()
        tele.configure(enabled=True)
        with tele.span("phase"):
            with tele.span("phase"):
                time.sleep(0.001)
        span = tele.snapshot()["spans"]["phase"]
        assert span["count"] == 2
        assert span["wall_s"] >= 0.002  # both nesting levels recorded


class TestSampler:
    def test_sampler_captures_stacks_during_busy_compute(self):
        PROFILER.configure(enabled=True, sample=True,
                           sample_interval_s=0.001)
        deadline = time.perf_counter() + 0.08
        with PROFILER.sample_unit():
            while time.perf_counter() < deadline:
                sum(i * i for i in range(200))
        samples = PROFILER.snapshot()["samples"]
        assert samples, "no stacks collected over 80ms at 1ms interval"
        assert any("test_profiling.py" in stack for stack in samples)

    def test_no_samples_outside_unit_window(self):
        PROFILER.configure(enabled=True, sample=True,
                           sample_interval_s=0.001)
        deadline = time.perf_counter() + 0.02
        while time.perf_counter() < deadline:
            sum(i * i for i in range(200))
        assert PROFILER.snapshot()["samples"] == {}


class TestBudgetInvariant:
    def test_profiled_sweep_budget_sums_to_wall(self):
        PROFILER.configure(enabled=True)
        before = PROFILER.snapshot()
        t0 = time.perf_counter()
        run_sweep(1)
        measured = time.perf_counter() - t0
        block = profile_block(PROFILER.delta_since(before))
        assert sum(block["budget"].values()) == pytest.approx(
            block["wall_s"], abs=1e-9)
        # Serial: one process, one root frame, so attributed wall
        # tracks the measured wall to instrumentation epsilon.
        assert block["wall_s"] == pytest.approx(
            measured, rel=0.15, abs=0.05)
        assert block["budget"]["compute"] > 0
        assert block["phases"]["sweep.execute"]["count"] == 1

    def test_profiled_cells_byte_identical(self):
        bare = fingerprint(run_sweep(1))
        PROFILER.configure(enabled=True)
        assert fingerprint(run_sweep(1)) == bare

    @pytest.mark.skipif(not fork_available(),
                        reason="parallel fold needs fork")
    def test_serial_and_parallel_folds_agree_on_counts(self):
        PROFILER.configure(enabled=True)
        before = PROFILER.snapshot()
        run_sweep(1)
        serial = PROFILER.delta_since(before)
        before = PROFILER.snapshot()
        run_sweep(2)
        parallel = PROFILER.delta_since(before)

        def counts(delta):
            return {name: rec["count"]
                    for name, rec in delta["phases"].items()
                    if name in ("unit.workload", "policy.decide",
                                "slack.exact", "slack.heuristic")}

        assert counts(serial) == counts(parallel)
        assert counts(serial)["unit.workload"] == len(XS) * N_TASKSETS


class TestReport:
    def test_category_map(self):
        assert category_of("engine.run") == "compute"
        assert category_of("unit.workload") == "compute"
        assert category_of("slack.exact") == "slack"
        assert category_of("policy.decide") == "policy"
        assert category_of("cache.lookup") == "cache"
        assert category_of("worker.chunk") == "ipc"
        assert category_of("pool.idle") == "idle"
        assert category_of("sweep.execute") == "supervision"
        assert category_of("mystery") == "other"

    def test_render_budget_mentions_categories_and_drift(self):
        delta = {"phases": {
            "sweep.execute": {"count": 1, "total_ns": 10**9,
                              "self_ns": 2 * 10**8},
            "engine.run": {"count": 4, "total_ns": 8 * 10**8,
                           "self_ns": 8 * 10**8}},
            "samples": {}}
        block = profile_block(delta)
        text = render_budget(block, measured_wall_s=1.0)
        assert "compute" in text and "supervision" in text
        assert "attribution drift" in text

    def test_diff_budgets_shapes(self):
        a = profile_block({"phases": {"engine.run": {
            "count": 1, "total_ns": 10**9, "self_ns": 10**9}}})
        b = profile_block({"phases": {"engine.run": {
            "count": 1, "total_ns": 2 * 10**9, "self_ns": 2 * 10**9}}})
        diff = diff_budgets(a, b)
        assert diff["compute"]["ratio"] == pytest.approx(2.0)
        assert diff["wall_s"]["delta"] == pytest.approx(1.0)
        assert "compute" in render_budget_diff(diff)

    def test_collapsed_roundtrip(self, tmp_path):
        samples = {"main;cli:run;engine:simulate": 7,
                   "main;cli:run;slack:exact_slack": 3}
        path = write_collapsed(samples, tmp_path / "profile.folded")
        assert read_collapsed(path) == samples

    def test_render_flame_tree(self):
        text = render_flame({"a;b": 3, "a;c": 1}, min_share=0.0)
        assert "4 samples" in text
        assert " a " in text and " b " in text and " c " in text

    def test_chrome_trace_shape(self):
        timeline = [("engine.run", 2000, 5000, 1),
                    ("sweep.execute", 1000, 6000, 0)]
        doc = chrome_profile_trace(timeline, origin_ns=1000)
        events = doc["traceEvents"]
        metas = [e for e in events if e["ph"] == "M"]
        xs = [e for e in events if e["ph"] == "X"]
        assert {m["name"] for m in metas} >= {"process_name",
                                              "thread_name"}
        assert [e["ts"] for e in xs] == sorted(e["ts"] for e in xs)
        assert xs[0]["name"] == "sweep.execute"
        assert xs[0]["ts"] == 0.0 and xs[0]["dur"] == 5.0
        assert all(e["pid"] == 1 for e in xs)


class TestManifestAndRegistry:
    def _manifest(self, *, profile=None, label="profiled"):
        return RunManifest(
            label=label,
            fingerprint={"workload_id": "w", "policies": ["lpSTA"],
                         "xs": [0.3], "n_tasksets": 1},
            phases={"sweep.compute": {"wall_s": 1.0, "cpu_s": 1.0,
                                      "count": 1}},
            profile=profile,
        )

    def test_profile_block_roundtrips_schema_5(self):
        block = profile_block({"phases": {"engine.run": {
            "count": 2, "total_ns": 10**9, "self_ns": 10**9}}})
        manifest = self._manifest(profile=block)
        assert manifest.schema == MANIFEST_SCHEMA == 5
        loaded = RunManifest.from_payload(manifest.to_payload())
        assert loaded.profile == block

    def test_schema_4_payload_loads_with_profile_none(self):
        payload = self._manifest().to_payload()
        payload["schema"] = 4
        del payload["profile"]
        loaded = RunManifest.from_payload(payload)
        assert loaded.profile is None

    def test_registry_projects_and_compares_profile(self):
        block_a = profile_block({"phases": {"engine.run": {
            "count": 2, "total_ns": 10**9, "self_ns": 10**9}}})
        block_b = profile_block({"phases": {
            "engine.run": {"count": 2, "total_ns": 10**9,
                           "self_ns": 10**9},
            "slack.exact": {"count": 5, "total_ns": 5 * 10**8,
                            "self_ns": 5 * 10**8}}})
        rec_a = record_from_manifest(self._manifest(profile=block_a))
        rec_b = record_from_manifest(self._manifest(profile=block_b,
                                                    label="after"))
        assert rec_a.profile["budget"]["compute"] == pytest.approx(1.0)
        roundtrip = type(rec_a).from_payload(rec_a.to_payload())
        assert roundtrip.profile == rec_a.profile

        diff = compare_records(rec_a, rec_b)
        assert diff["profile"]["slack"]["delta"] == pytest.approx(0.5)
        assert diff["profile"]["attributed_wall_s"]["delta"] == (
            pytest.approx(0.5))
        assert "profile.slack" in render_compare(diff)
        assert "profile" in render_record(rec_b)
