"""Integration: hard real-time safety across randomized workloads.

The non-negotiable claim of the whole repository: every policy (except
the documented laEDF-raw ablation) meets every deadline on every
feasible workload.  These sweeps cover the utilization range, demand
variability and several demand shapes.
"""

import numpy as np
import pytest

from repro.cpu.profiles import generic4_processor, ideal_processor
from repro.policies.registry import ALL_POLICY_NAMES, make_policy
from repro.sim.engine import simulate
from repro.tasks.execution import (
    BimodalExecution,
    MarkovExecution,
    SinusoidalExecution,
    UniformExecution,
)
from repro.tasks.generators import generate_taskset

UTILIZATIONS = (0.4, 0.8, 0.98)
SEEDS = (11, 12, 13)


def _taskset(u, seed, n=5):
    return generate_taskset(n, u, np.random.default_rng(seed))


class TestNoMissSweeps:
    @pytest.mark.parametrize("policy_name", ALL_POLICY_NAMES)
    @pytest.mark.parametrize("u", UTILIZATIONS)
    def test_uniform_demand(self, policy_name, u):
        for seed in SEEDS:
            ts = _taskset(u, seed)
            result = simulate(
                ts, ideal_processor(), make_policy(policy_name),
                UniformExecution(low=0.2, high=1.0, seed=seed),
                horizon=min(ts.default_horizon(), 4000.0))
            assert not result.missed, (
                f"{policy_name} missed at U={u} seed={seed}")

    @pytest.mark.parametrize("policy_name", ALL_POLICY_NAMES)
    def test_bursty_bimodal_demand(self, policy_name):
        ts = _taskset(0.95, 17, n=6)
        result = simulate(
            ts, ideal_processor(), make_policy(policy_name),
            BimodalExecution(light=0.05, heavy=1.0, p_heavy=0.5, seed=17),
            horizon=min(ts.default_horizon(), 4000.0))
        assert not result.missed

    @pytest.mark.parametrize("policy_name", ALL_POLICY_NAMES)
    def test_discrete_levels_processor(self, policy_name):
        ts = _taskset(0.9, 19)
        result = simulate(
            ts, generic4_processor(), make_policy(policy_name),
            UniformExecution(low=0.3, high=1.0, seed=19),
            horizon=min(ts.default_horizon(), 4000.0))
        assert not result.missed

    @pytest.mark.parametrize("policy_name", ALL_POLICY_NAMES)
    def test_constrained_deadline_sets(self, policy_name):
        # Constrained deadlines exercise the density-vs-demand paths
        # and the deadline-correction terms in both slack analyses.
        for seed in (41, 43):
            ts = generate_taskset(5, 0.7, np.random.default_rng(seed),
                                  deadline_range=(0.55, 0.95))
            result = simulate(
                ts, ideal_processor(), make_policy(policy_name),
                UniformExecution(low=0.3, high=1.0, seed=seed),
                horizon=min(ts.default_horizon(), 4000.0))
            assert not result.missed, (
                f"{policy_name} missed on constrained set seed={seed}")

    @pytest.mark.parametrize("model", [
        SinusoidalExecution(offset=0.55, amplitude=0.4, cycle=12, seed=5),
        MarkovExecution(light=0.1, heavy=1.0, p_stay=0.9, seed=5),
    ], ids=["sinusoid", "markov"])
    def test_paper_policies_on_shaped_demand(self, model):
        ts = _taskset(0.9, 23, n=6)
        for name in ("lpSEH", "lpSTA"):
            result = simulate(ts, ideal_processor(), make_policy(name),
                              model,
                              horizon=min(ts.default_horizon(), 4000.0))
            assert not result.missed


class TestEnergyAccounting:
    @pytest.mark.parametrize("policy_name", ("none", "ccEDF", "lpSTA"))
    def test_components_sum_to_total(self, policy_name):
        ts = _taskset(0.8, 29)
        result = simulate(ts, ideal_processor(), make_policy(policy_name),
                          UniformExecution(low=0.5, seed=29),
                          horizon=2000.0)
        assert result.total_energy == pytest.approx(
            result.busy_energy + result.idle_energy
            + result.switch_energy)

    def test_time_components_cover_horizon(self):
        ts = _taskset(0.8, 31)
        result = simulate(ts, ideal_processor(), make_policy("lpSEH"),
                          UniformExecution(low=0.5, seed=31),
                          horizon=2000.0)
        covered = result.busy_time + result.idle_time + result.switch_time
        assert covered == pytest.approx(2000.0, rel=1e-6)
