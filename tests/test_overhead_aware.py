"""Tests for the overhead-aware policy wrapper."""

import pytest

from repro.cpu.power import PolynomialPowerModel
from repro.cpu.processor import Processor
from repro.cpu.speed import ContinuousScale
from repro.cpu.transition import ConstantOverhead, NoOverhead
from repro.policies.ccedf import CcEdfPolicy
from repro.policies.overhead_aware import OverheadAwarePolicy
from repro.policies.registry import make_policy
from repro.policies.slack_sta import LpStaPolicy
from repro.policies.static_edf import StaticEdfPolicy
from repro.sim.engine import simulate
from repro.tasks.execution import UniformExecution, WorstCaseExecution
from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet


def overhead_processor(switch_time=0.2, switch_energy=0.5):
    return Processor(
        scale=ContinuousScale(min_speed=0.05),
        power_model=PolynomialPowerModel(alpha=3.0),
        transition_model=ConstantOverhead(switch_time=switch_time,
                                          switch_energy=switch_energy))


class TestTransparency:
    def test_free_switching_passes_through(self, two_task_set,
                                           half_model):
        proc = Processor(scale=ContinuousScale(min_speed=0.05),
                         transition_model=NoOverhead())
        plain = simulate(two_task_set, proc, LpStaPolicy(), half_model,
                         horizon=40.0)
        wrapped = simulate(two_task_set, proc,
                           OverheadAwarePolicy(LpStaPolicy()),
                           half_model, horizon=40.0)
        assert wrapped.total_energy == pytest.approx(plain.total_energy)
        assert wrapped.switch_count == plain.switch_count

    def test_name_reflects_inner(self):
        assert OverheadAwarePolicy(CcEdfPolicy()).name == "oa-ccEDF"

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            OverheadAwarePolicy(CcEdfPolicy(), reserve_factor=0.5)
        with pytest.raises(ValueError):
            OverheadAwarePolicy(CcEdfPolicy(), hysteresis=-1.0)


class TestSafety:
    def test_no_misses_with_large_switch_time(self, three_task_set):
        proc = overhead_processor(switch_time=0.5)
        model = UniformExecution(low=0.2, high=1.0, seed=9)
        result = simulate(three_task_set, proc,
                          OverheadAwarePolicy(LpStaPolicy()), model,
                          horizon=400.0)
        assert not result.missed

    def test_tight_deadline_vetoes_slowdown(self):
        # One job with zero slack beyond its budget: any slowdown paying
        # a 0.5 switch would miss; the wrapper must keep full speed.
        ts = TaskSet([PeriodicTask("T", wcet=9.8, period=10.0)])
        proc = overhead_processor(switch_time=0.5)
        wrapper = OverheadAwarePolicy(StaticEdfPolicy())
        result = simulate(ts, proc, wrapper, WorstCaseExecution(),
                          horizon=20.0)
        assert not result.missed
        assert wrapper.vetoed_switches > 0
        assert result.switch_count == 0


class TestProfitability:
    def test_unprofitable_switch_suppressed(self, two_task_set):
        # Enormous switch energy: the wrapper must never switch, so the
        # whole run stays at the initial full speed.
        proc = overhead_processor(switch_time=0.0, switch_energy=1e9)
        wrapper = OverheadAwarePolicy(CcEdfPolicy())
        result = simulate(two_task_set, proc, wrapper,
                          UniformExecution(low=0.5, seed=3),
                          horizon=40.0)
        assert result.switch_count == 0
        assert result.mean_speed() == pytest.approx(1.0)

    def test_profitable_switch_taken(self, two_task_set):
        proc = overhead_processor(switch_time=0.0, switch_energy=1e-6)
        wrapper = OverheadAwarePolicy(StaticEdfPolicy())
        result = simulate(two_task_set, proc, wrapper,
                          WorstCaseExecution(), horizon=40.0)
        assert result.switch_count >= 1
        assert result.mean_speed() < 1.0

    def test_wrapper_beats_naive_policy_under_heavy_overhead(
            self, two_task_set):
        # With expensive switches the wrapped policy must not lose to
        # the unwrapped one (which pays for every oscillation).
        proc = overhead_processor(switch_time=0.01, switch_energy=0.3)
        model = UniformExecution(low=0.3, high=1.0, seed=21)
        naive = simulate(two_task_set, proc, CcEdfPolicy(), model,
                         horizon=200.0, allow_misses=True)
        wrapped = simulate(two_task_set, proc,
                           OverheadAwarePolicy(CcEdfPolicy()), model,
                           horizon=200.0)
        assert wrapped.switch_count <= naive.switch_count
        assert wrapped.total_energy <= naive.total_energy * 1.05


class TestRegistryIntegration:
    def test_make_policy_with_wrapper(self):
        policy = make_policy("lpSEH", overhead_aware=True)
        assert isinstance(policy, OverheadAwarePolicy)
        assert policy.name == "oa-lpSEH"

    def test_hooks_forwarded(self, two_task_set, half_model):
        # The inner ccEDF still sees releases/completions through the
        # wrapper: its estimate must differ from the initial U.
        proc = overhead_processor()
        wrapper = OverheadAwarePolicy(CcEdfPolicy())
        simulate(two_task_set, proc, wrapper, half_model, horizon=40.0)
        estimate = wrapper.inner.utilization_estimate()
        assert estimate < two_task_set.utilization
