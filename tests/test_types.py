"""Tests for repro.types tolerant comparisons."""

import math

import pytest

from repro.types import (
    TIME_EPS,
    approx_eq,
    approx_ge,
    approx_gt,
    approx_le,
    approx_lt,
    clamp,
    is_finite_positive,
    snap_nonnegative,
)


class TestApproxComparisons:
    def test_le_within_tolerance(self):
        assert approx_le(1.0 + TIME_EPS / 2, 1.0)

    def test_le_strictly_below(self):
        assert approx_le(0.5, 1.0)

    def test_le_rejects_clear_violation(self):
        assert not approx_le(1.0 + 10 * TIME_EPS, 1.0)

    def test_ge_mirror_of_le(self):
        assert approx_ge(1.0 - TIME_EPS / 2, 1.0)
        assert not approx_ge(1.0 - 10 * TIME_EPS, 1.0)

    def test_eq_symmetric(self):
        assert approx_eq(2.0, 2.0 + TIME_EPS / 3)
        assert approx_eq(2.0 + TIME_EPS / 3, 2.0)
        assert not approx_eq(2.0, 2.1)

    def test_lt_excludes_near_equal(self):
        assert not approx_lt(1.0 - TIME_EPS / 2, 1.0)
        assert approx_lt(0.9, 1.0)

    def test_gt_excludes_near_equal(self):
        assert not approx_gt(1.0 + TIME_EPS / 2, 1.0)
        assert approx_gt(1.1, 1.0)

    def test_custom_epsilon(self):
        assert approx_eq(1.0, 1.05, eps=0.1)
        assert not approx_eq(1.0, 1.05, eps=0.01)


class TestClamp:
    def test_inside_interval_unchanged(self):
        assert clamp(0.5, 0.0, 1.0) == 0.5

    def test_below_clamps_to_low(self):
        assert clamp(-3.0, 0.0, 1.0) == 0.0

    def test_above_clamps_to_high(self):
        assert clamp(7.0, 0.0, 1.0) == 1.0

    def test_empty_interval_raises(self):
        with pytest.raises(ValueError):
            clamp(0.5, 1.0, 0.0)


class TestSnapNonnegative:
    def test_small_negative_snaps_to_zero(self):
        assert snap_nonnegative(-TIME_EPS / 2) == 0.0

    def test_large_negative_passes_through(self):
        assert snap_nonnegative(-1.0) == -1.0

    def test_positive_unchanged(self):
        assert snap_nonnegative(0.25) == 0.25

    def test_zero_unchanged(self):
        assert snap_nonnegative(0.0) == 0.0


class TestIsFinitePositive:
    @pytest.mark.parametrize("value", [1.0, 0.001, 1e12])
    def test_accepts_positive_finite(self, value):
        assert is_finite_positive(value)

    @pytest.mark.parametrize("value", [0.0, -1.0, math.inf, math.nan])
    def test_rejects_non_positive_or_non_finite(self, value):
        assert not is_finite_positive(value)
