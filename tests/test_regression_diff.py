"""Tests for the result regression differ."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.config import FigureData, SeriesPoint, TableData
from repro.experiments.io import write_json
from repro.experiments.regression import diff_results, render_drifts


def _export(tmp_path, name, mean_a=0.5, include_table=True,
            extra_series=False):
    directory = tmp_path / name
    fig = FigureData("EXP-F1", "fig", "x", "y")
    fig.add_point("lpSTA", SeriesPoint(0.5, mean_a, 0.01, 10))
    fig.add_point("lpSTA", SeriesPoint(0.9, 0.61, 0.01, 10))
    if extra_series:
        fig.add_point("new", SeriesPoint(0.5, 0.9, 0.0, 1))
    write_json(fig, directory / "exp_f1.json")
    if include_table:
        table = TableData("EXP-T1", "t", columns=("policy", "energy"))
        table.add_row(policy="static", energy=0.49)
        write_json(table, directory / "exp_t1.json")
    return directory


class TestDiff:
    def test_identical_sets_have_no_drift(self, tmp_path):
        a = _export(tmp_path, "a")
        b = _export(tmp_path, "b")
        assert diff_results(a, b) == []

    def test_changed_mean_detected(self, tmp_path):
        a = _export(tmp_path, "a", mean_a=0.5)
        b = _export(tmp_path, "b", mean_a=0.52)
        drifts = diff_results(a, b)
        assert len(drifts) == 1
        drift = drifts[0]
        assert drift.experiment == "EXP-F1"
        assert "lpSTA@x=0.5" in drift.key
        assert drift.before == pytest.approx(0.5)
        assert drift.after == pytest.approx(0.52)

    def test_tolerance_suppresses_noise(self, tmp_path):
        a = _export(tmp_path, "a", mean_a=0.5)
        b = _export(tmp_path, "b", mean_a=0.5 + 1e-9)
        assert diff_results(a, b) == []
        assert diff_results(a, b, rel_tol=0.0, abs_tol=0.0)

    def test_missing_experiment_detected(self, tmp_path):
        a = _export(tmp_path, "a", include_table=True)
        b = _export(tmp_path, "b", include_table=False)
        drifts = diff_results(a, b)
        assert any(d.experiment == "EXP-T1" and d.after is None
                   for d in drifts)

    def test_new_series_detected(self, tmp_path):
        a = _export(tmp_path, "a")
        b = _export(tmp_path, "b", extra_series=True)
        drifts = diff_results(a, b)
        assert any("new@x=0.5" in d.key and d.before is None
                   for d in drifts)

    def test_empty_dir_rejected(self, tmp_path):
        a = _export(tmp_path, "a")
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(ExperimentError):
            diff_results(a, empty)


class TestRendering:
    def test_no_drift_message(self):
        assert "equivalent" in render_drifts([])

    def test_drift_lines(self, tmp_path):
        a = _export(tmp_path, "a", mean_a=0.5)
        b = _export(tmp_path, "b", mean_a=0.7)
        text = render_drifts(diff_results(a, b))
        assert "1 drifted" in text
        assert "EXP-F1" in text


class TestCli:
    def test_diff_exit_codes(self, tmp_path, capsys):
        from repro.cli import main
        a = _export(tmp_path, "a", mean_a=0.5)
        b = _export(tmp_path, "b", mean_a=0.5)
        assert main(["diff", str(a), str(b)]) == 0
        c = _export(tmp_path, "c", mean_a=0.9)
        assert main(["diff", str(a), str(c)]) == 1
        assert "drifted" in capsys.readouterr().out
