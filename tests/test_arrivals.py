"""Tests for repro.tasks.arrivals and sporadic simulation."""

import numpy as np
import pytest

from repro.analysis.validation import validate_run
from repro.cpu.profiles import ideal_processor
from repro.errors import ConfigurationError
from repro.policies.registry import ALL_POLICY_NAMES, make_policy
from repro.sim.engine import simulate
from repro.tasks.arrivals import (
    BurstyArrival,
    ExponentialGapArrival,
    PeriodicArrival,
    UniformJitterArrival,
)
from repro.tasks.execution import UniformExecution, WorstCaseExecution
from repro.tasks.generators import generate_taskset
from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet


@pytest.fixture
def task() -> PeriodicTask:
    return PeriodicTask("T", wcet=2.0, period=10.0, phase=3.0)


ALL_ARRIVALS = [
    PeriodicArrival(),
    UniformJitterArrival(jitter=0.5, seed=1),
    ExponentialGapArrival(mean_extra=0.4, seed=2),
    BurstyArrival(lull_factor=3.0, p_stay=0.8, seed=3),
]


class TestModelInvariants:
    @pytest.mark.parametrize("model", ALL_ARRIVALS,
                             ids=lambda m: type(m).__name__)
    def test_first_arrival_is_phase(self, model, task):
        assert model.arrival_time(task, 0) == pytest.approx(3.0)

    @pytest.mark.parametrize("model", ALL_ARRIVALS,
                             ids=lambda m: type(m).__name__)
    def test_minimum_separation_respected(self, model, task):
        times = [model.arrival_time(task, i) for i in range(100)]
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(g >= task.period - 1e-9 for g in gaps)

    @pytest.mark.parametrize("model", ALL_ARRIVALS,
                             ids=lambda m: type(m).__name__)
    def test_deterministic_and_order_independent(self, model, task):
        forward = [model.arrival_time(task, i) for i in range(30)]
        fresh = type(model)(**{k: v for k, v in model.__dict__.items()
                               if k in ("jitter", "mean_extra",
                                        "lull_factor", "p_stay", "seed")})
        backward = [fresh.arrival_time(task, i)
                    for i in reversed(range(30))]
        assert forward == list(reversed(backward))

    def test_negative_index_rejected(self, task):
        with pytest.raises(ConfigurationError):
            PeriodicArrival().arrival_time(task, -1)


class TestPeriodic:
    def test_exact_periods(self, task):
        model = PeriodicArrival()
        assert model.arrival_time(task, 4) == pytest.approx(43.0)
        assert model.is_periodic


class TestUniformJitter:
    def test_zero_jitter_is_periodic(self, task):
        model = UniformJitterArrival(jitter=0.0, seed=1)
        assert model.is_periodic
        assert model.arrival_time(task, 5) == pytest.approx(53.0)

    def test_gap_upper_bound(self, task):
        model = UniformJitterArrival(jitter=0.3, seed=4)
        times = [model.arrival_time(task, i) for i in range(200)]
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert max(gaps) <= 13.0 + 1e-9

    def test_invalid_jitter(self):
        with pytest.raises(ConfigurationError):
            UniformJitterArrival(jitter=-0.1)


class TestBursty:
    def test_only_two_gap_values(self, task):
        model = BurstyArrival(lull_factor=2.5, p_stay=0.7, seed=5)
        times = [model.arrival_time(task, i) for i in range(100)]
        gaps = sorted({round(b - a, 9) for a, b in zip(times, times[1:])})
        assert gaps == pytest.approx([10.0, 25.0])

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            BurstyArrival(lull_factor=0.5)
        with pytest.raises(ConfigurationError):
            BurstyArrival(p_stay=1.5)


class TestSporadicSimulation:
    @pytest.mark.parametrize("policy_name", ALL_POLICY_NAMES)
    def test_no_misses_with_jittered_arrivals(self, policy_name):
        ts = generate_taskset(5, 0.9, np.random.default_rng(61))
        result = simulate(
            ts, ideal_processor(), make_policy(policy_name),
            UniformExecution(low=0.3, high=1.0, seed=61),
            arrival_model=UniformJitterArrival(jitter=0.6, seed=61),
            horizon=min(ts.default_horizon(), 3000.0))
        assert not result.missed, policy_name

    @pytest.mark.parametrize("policy_name",
                             ("static", "DRA", "lpSEH", "lpSTA",
                              "clairvoyant"))
    def test_no_misses_with_bursty_arrivals(self, policy_name):
        ts = generate_taskset(5, 0.95, np.random.default_rng(67))
        result = simulate(
            ts, ideal_processor(), make_policy(policy_name),
            UniformExecution(low=0.2, high=1.0, seed=67),
            arrival_model=BurstyArrival(lull_factor=4.0, p_stay=0.85,
                                        seed=67),
            horizon=min(ts.default_horizon(), 3000.0))
        assert not result.missed, policy_name

    def test_sporadic_saves_more_than_periodic(self):
        # Longer gaps mean lower effective load: the dynamic policies
        # harvest it while the no-DVS baseline idles it away.
        ts = generate_taskset(5, 0.8, np.random.default_rng(71))
        model = UniformExecution(low=0.5, high=1.0, seed=71)
        norms = {}
        for label, arrivals in (
                ("periodic", PeriodicArrival()),
                ("sporadic", ExponentialGapArrival(mean_extra=1.0,
                                                   seed=71))):
            baseline = simulate(ts, ideal_processor(),
                                make_policy("none"), model,
                                arrival_model=arrivals, horizon=2400.0)
            result = simulate(ts, ideal_processor(),
                              make_policy("lpSTA"), model,
                              arrival_model=arrivals, horizon=2400.0)
            norms[label] = result.normalized_energy(baseline)
        assert norms["sporadic"] < norms["periodic"]

    def test_sporadic_trace_validates(self):
        ts = generate_taskset(4, 0.7, np.random.default_rng(73))
        model = UniformExecution(low=0.4, high=1.0, seed=73)
        arrivals = UniformJitterArrival(jitter=0.4, seed=73)
        result = simulate(ts, ideal_processor(), make_policy("lpSEH"),
                          model, arrival_model=arrivals, horizon=1200.0,
                          record_trace=True)
        validate_run(result, ts, ideal_processor(), model, arrivals)

    def test_policy_view_is_pessimistic(self):
        # With sporadic arrivals the policy-visible next release must
        # never exceed the engine's actual sampled arrival.
        from repro.policies.base import DvsPolicy

        gaps_checked = []

        class ProbePolicy(DvsPolicy):
            name = "probe"

            def select_speed(self, job, ctx):
                for t in ctx.taskset:
                    visible = ctx.next_release_of(t.name)
                    actual = ctx._engine._next_release[t.name]
                    gaps_checked.append(actual - visible)
                return 1.0

        ts = TaskSet([PeriodicTask("A", 1.0, 10.0),
                      PeriodicTask("B", 2.0, 14.0)])
        simulate(ts, ideal_processor(), ProbePolicy(),
                 WorstCaseExecution(),
                 arrival_model=UniformJitterArrival(jitter=0.8, seed=3),
                 horizon=400.0)
        assert gaps_checked
        assert all(g >= -1e-9 for g in gaps_checked)
        assert any(g > 0.5 for g in gaps_checked)  # genuinely sporadic
