"""Tests for the experiment harness (quick-mode figures and tables)."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.config import (
    DEFAULT_POLICIES,
    EXPERIMENT_PERIOD_CHOICES,
    FigureData,
    SeriesPoint,
    TableData,
)
from repro.experiments.figures import (
    FIGURES,
    baseline_ablation,
    energy_vs_bcwc,
    energy_vs_levels,
    energy_vs_utilization,
    overhead_sensitivity,
    slack_accuracy,
)
from repro.experiments.runner import standard_taskset, taskset_seeds
from repro.experiments.tables import TABLES, processor_model_table, realworld_table


class TestConfigContainers:
    def test_figure_add_and_lookup(self):
        fig = FigureData("X", "t", "x", "y")
        fig.add_point("s", SeriesPoint(x=1.0, mean=0.5, ci95=0.1, count=3))
        assert fig.xs() == [1.0]
        assert fig.value_at("s", 1.0).mean == 0.5
        assert fig.value_at("s", 2.0) is None

    def test_figure_render_contains_series(self):
        fig = FigureData("X", "title", "u", "energy")
        fig.add_point("lpSTA", SeriesPoint(1.0, 0.5, 0.0, 1))
        text = fig.render()
        assert "lpSTA" in text and "title" in text

    def test_figure_rows_flatten_extras(self):
        fig = FigureData("X", "t", "x", "y")
        fig.add_point("s", SeriesPoint(1.0, 0.5, 0.1, 3,
                                       extra={"misses": 0}))
        rows = fig.to_rows()
        assert rows[0]["misses"] == 0
        assert rows[0]["experiment"] == "X"

    def test_table_missing_column_rejected(self):
        table = TableData("T", "t", columns=("a", "b"))
        with pytest.raises(ExperimentError):
            table.add_row(a=1)

    def test_table_render(self):
        table = TableData("T", "title", columns=("a", "b"))
        table.add_row(a="x", b=1.23456)
        text = table.render()
        assert "1.235" in text and "x" in text


class TestRunnerHelpers:
    def test_seeds_deterministic_and_distinct(self):
        a = taskset_seeds(7, 5)
        b = taskset_seeds(7, 5)
        assert a == b
        assert len(set(a)) == 5

    def test_standard_taskset_uses_grid(self):
        ts = standard_taskset(6, 0.8, seed=3)
        assert all(t.period in EXPERIMENT_PERIOD_CHOICES for t in ts)
        assert ts.utilization == pytest.approx(0.8)


class TestFigureDrivers:
    """Quick-mode smoke runs pinning the reproduction shapes."""

    @pytest.mark.slow
    def test_fig1_shape(self):
        fig = energy_vs_utilization(quick=True)
        assert set(fig.series) == set(DEFAULT_POLICIES)
        # none normalises to 1 everywhere.
        for point in fig.series["none"]:
            assert point.mean == pytest.approx(1.0)
        # Energy rises with utilization for the paper's policy.
        sta = [p.mean for p in fig.series["lpSTA"]]
        assert sta == sorted(sta)
        # Zero misses recorded.
        for points in fig.series.values():
            for p in points:
                assert p.extra["misses"] == 0

    @pytest.mark.slow
    def test_fig2_savings_grow_with_slack(self):
        fig = energy_vs_bcwc(quick=True)
        sta = [p.mean for p in fig.series["lpSTA"]]
        assert sta == sorted(sta)  # more demand -> more energy
        # At bc/wc = 1.0 lpSTA coincides with static.
        last_sta = fig.series["lpSTA"][-1].mean
        last_static = fig.series["static"][-1].mean
        assert last_sta == pytest.approx(last_static, rel=1e-6)

    def test_fig4_more_levels_never_hurt(self):
        fig = energy_vs_levels(quick=True)
        # x=0 encodes continuous; it must be the cheapest for lpSTA.
        by_x = {p.x: p.mean for p in fig.series["lpSTA"]}
        continuous = by_x.pop(0.0)
        assert all(continuous <= v + 1e-9 for v in by_x.values())

    @pytest.mark.slow
    def test_fig5_runs_overhead_aware(self):
        fig = overhead_sensitivity(quick=True)
        for points in fig.series.values():
            for p in points:
                assert p.extra["misses"] == 0

    def test_fig6_ratio_at_most_one(self):
        fig = slack_accuracy(quick=True)
        for family in ("implicit", "constrained"):
            for p in fig.series[family]:
                assert 0.0 <= p.mean <= 1.0 + 1e-9
        # Implicit deadlines: the heuristic is empirically exact.
        for p in fig.series["implicit"]:
            assert p.mean >= 0.999

    def test_fig7_static_baseline_wins(self):
        fig = baseline_ablation(quick=True)
        for x in fig.xs():
            static = fig.value_at("lpSTA(static)", x).mean
            greedy = fig.value_at("lpSTA(greedy)", x).mean
            assert static <= greedy + 0.02

    def test_figures_registry_complete(self):
        expected = {f"fig{i}" for i in range(1, 13)} | {"faultmatrix"}
        assert set(FIGURES) == expected

    def test_fig12_quick_shape(self):
        from repro.experiments.figures import multicore_scaling
        fig = multicore_scaling(quick=True)
        lpsta = {p.x: p.mean for p in fig.series["lpSTA"]}
        assert lpsta[4.0] < lpsta[1.0]

    def test_fig11_quick_shape(self):
        from repro.experiments.figures import dpm_sensitivity
        fig = dpm_sensitivity(quick=True)
        never = {p.x: p.mean for p in fig.series["never-sleep"]}
        plain = {p.x: p.mean for p in fig.series["sleep-on-idle"]}
        assert plain[0.5] < never[0.5]

    @pytest.mark.slow
    def test_fig10_quick_shape(self):
        from repro.experiments.figures import sporadic_sensitivity
        fig = sporadic_sensitivity(quick=True)
        lpsta = {p.x: p.mean for p in fig.series["lpSTA"]}
        assert lpsta[1.0] < lpsta[0.0]
        for points in fig.series.values():
            for p in points:
                assert p.extra["misses"] == 0

    def test_fig8_quick_shape(self):
        from repro.experiments.figures import leakage_sensitivity
        fig = leakage_sensitivity(quick=True)
        plain = {p.x: p.mean for p in fig.series["lpSTA"]}
        floored = {p.x: p.mean for p in fig.series["cs-lpSTA"]}
        for rho, value in plain.items():
            assert floored[rho] <= value + 1e-9

    def test_fig9_quick_shape(self):
        from repro.experiments.figures import optimality_gap
        fig = optimality_gap(quick=True)
        for name, points in fig.series.items():
            for p in points:
                assert p.mean >= 1.0 - 1e-6


class TestChartRendering:
    def test_chart_contains_series_markers(self):
        fig = FigureData("X", "t", "x", "y")
        fig.add_point("alpha", SeriesPoint(0.0, 0.0, 0.0, 1))
        fig.add_point("alpha", SeriesPoint(1.0, 1.0, 0.0, 1))
        fig.add_point("beta", SeriesPoint(0.5, 0.5, 0.0, 1))
        chart = fig.render_chart(width=20, height=8)
        assert "A=alpha" in chart and "B=beta" in chart
        assert "A" in chart.splitlines()[1]  # top-right point row

    def test_chart_empty_figure(self):
        assert "no data" in FigureData("X", "t", "x", "y").render_chart()

    def test_chart_single_point(self):
        fig = FigureData("X", "t", "x", "y")
        fig.add_point("only", SeriesPoint(2.0, 3.0, 0.0, 1))
        chart = fig.render_chart(width=10, height=4)
        assert "A=only" in chart

    def test_chart_overlap_marker(self):
        fig = FigureData("X", "t", "x", "y")
        fig.add_point("a", SeriesPoint(0.5, 0.5, 0.0, 1))
        fig.add_point("b", SeriesPoint(0.5, 0.5, 0.0, 1))
        chart = fig.render_chart(width=10, height=4)
        assert "*" in chart


class TestTableDrivers:
    def test_table1_lists_all_profiles(self):
        table = processor_model_table()
        names = {row["profile"] for row in table.rows}
        assert {"ideal", "generic4", "xscale", "sa1100",
                "crusoe"} <= names

    @pytest.mark.slow
    def test_table2_realworld(self):
        table = realworld_table(quick=True)
        assert {row["taskset"] for row in table.rows} == \
            {"cnc", "avionics", "ins"}
        for row in table.rows:
            # DVS must pay off on every suite.
            assert row["lpSTA"] < 1.0
            assert row["none"] == pytest.approx(1.0)

    def test_table3_latency(self):
        from repro.experiments.tables import latency_price_table
        table = latency_price_table(quick=True)
        rows = {row["policy"]: row for row in table.rows}
        assert rows["none"]["energy"] == 1.0
        assert rows["lpSTA"]["mean_resp_x"] >= 1.0

    def test_tables_registry_complete(self):
        assert set(TABLES) == {"table1", "table2", "table3"}
