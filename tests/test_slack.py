"""Tests for repro.analysis.slack — the paper's core computation.

Hand-worked scenarios pin down the exact semantics of ``exact_slack``;
dominance tests establish the safety relation between the heuristic and
the exact analysis.
"""

import pytest

from repro.analysis.slack import (
    ActiveJob,
    SystemState,
    allotted_speed,
    demand,
    demand_linear_bound,
    exact_slack,
    heuristic_slack,
    scale_tasks,
    stretch_speed,
)
from repro.errors import ConfigurationError
from repro.tasks.task import PeriodicTask


def make_state(time, active, tasks, next_release):
    return SystemState.build(time=time, active=active, tasks=tasks,
                             next_release=next_release)


@pytest.fixture
def single_task():
    return PeriodicTask("T", wcet=2.0, period=10.0)


class TestSystemState:
    def test_build_validates_next_release(self, single_task):
        with pytest.raises(ConfigurationError, match="missing"):
            make_state(0.0, [ActiveJob(10.0, 2.0)], [single_task], {})
        with pytest.raises(ConfigurationError, match="past"):
            make_state(5.0, [ActiveJob(10.0, 2.0)], [single_task],
                       {"T": 1.0})

    def test_earliest_deadline(self, single_task):
        state = make_state(0.0,
                           [ActiveJob(10.0, 2.0), ActiveJob(7.0, 1.0)],
                           [single_task], {"T": 10.0})
        assert state.earliest_deadline == 7.0

    def test_pending_work(self, single_task):
        state = make_state(0.0,
                           [ActiveJob(10.0, 2.0), ActiveJob(7.0, 1.0)],
                           [single_task], {"T": 10.0})
        assert state.pending_work == pytest.approx(3.0)

    def test_negative_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            ActiveJob(10.0, -1.0)


class TestExactSlackSingleTask:
    def test_lone_job_gets_time_to_deadline(self, single_task):
        # One job, rem 2, deadline 10, next release 10 (deadline 20).
        # g(10) = 10 - 2 = 8; g(20) = 20 - (2 + 2) = 16; min = 8.
        state = make_state(0.0, [ActiveJob(10.0, 2.0)], [single_task],
                           {"T": 10.0})
        assert exact_slack(state) == pytest.approx(8.0)

    def test_slack_shrinks_as_time_passes(self, single_task):
        state = make_state(6.0, [ActiveJob(10.0, 2.0)], [single_task],
                           {"T": 10.0})
        assert exact_slack(state) == pytest.approx(2.0)

    def test_zero_slack_at_the_wire(self, single_task):
        state = make_state(8.0, [ActiveJob(10.0, 2.0)], [single_task],
                           {"T": 10.0})
        assert exact_slack(state) == pytest.approx(0.0)

    def test_never_negative(self, single_task):
        # Infeasible snapshot (3 units of budget, 2 of time): clamps to 0.
        state = make_state(8.0, [ActiveJob(10.0, 3.0)], [single_task],
                           {"T": 10.0})
        assert exact_slack(state) == 0.0


class TestExactSlackTwoTasks:
    @pytest.fixture
    def tasks(self):
        return (PeriodicTask("A", wcet=2.0, period=10.0),
                PeriodicTask("B", wcet=6.0, period=20.0))

    def test_future_interference_counted(self, tasks):
        # At t=0: A#0 active (rem 2, d 10); B#0 active (rem 6, d 20).
        # g(10) = 10 - 2 = 8
        # g(20) = 20 - (2 + 6 + 2[A#1 due 20]) = 10
        # g(30) = 30 - (10 + 2[A#2 due 30]) = 18 ... min is 8.
        state = make_state(0.0,
                           [ActiveJob(10.0, 2.0), ActiveJob(20.0, 6.0)],
                           tasks, {"A": 10.0, "B": 20.0})
        assert exact_slack(state) == pytest.approx(8.0)

    def test_later_deadline_can_bind(self, tasks):
        # Inflate B's backlog so the t=20 constraint binds instead:
        # g(10) = 10 - 2 = 8; g(20) = 20 - (2 + 11 + 2) = 5.
        state = make_state(0.0,
                           [ActiveJob(10.0, 2.0), ActiveJob(20.0, 11.0)],
                           tasks, {"A": 10.0, "B": 20.0})
        assert exact_slack(state) == pytest.approx(5.0)

    def test_only_deadlines_at_or_after_earliest_count(self, tasks):
        # A short-deadline future job before d_J must not contribute a
        # candidate (only demand at later points).  B#0 dispatched at
        # t=11 with d=20; A's next job releases at 20 -> its deadline 30
        # only matters through g(30) >= 0.
        state = make_state(11.0, [ActiveJob(20.0, 5.0)], tasks,
                           {"A": 20.0, "B": 20.0})
        # g(20) = 9 - 5 = 4; g(30) = 19 - (5 + 2 + 6) = 6; min 4.
        assert exact_slack(state) == pytest.approx(4.0)


class TestExactSlackSaturated:
    def test_saturated_scaled_state_has_no_static_slack(self):
        # The statically scaled state of a U=1 set is exactly tight:
        # with worst-case budgets the slack must be 0 at every point.
        tasks = (PeriodicTask("A", wcet=2.0, period=4.0),
                 PeriodicTask("B", wcet=5.0, period=10.0))
        state = make_state(0.0,
                           [ActiveJob(4.0, 2.0), ActiveJob(10.0, 5.0)],
                           tasks, {"A": 4.0, "B": 10.0})
        assert exact_slack(state) == pytest.approx(0.0)

    def test_early_completion_creates_slack(self):
        # Same set, but B already finished (not active): A can absorb
        # B's unused allocation up to the next constraint.
        tasks = (PeriodicTask("A", wcet=2.0, period=4.0),
                 PeriodicTask("B", wcet=5.0, period=10.0))
        state = make_state(0.0, [ActiveJob(4.0, 2.0)], tasks,
                           {"A": 4.0, "B": 10.0})
        # g(4) = 4 - 2 = 2; g(8) = 8 - 4 = 4; g(12) = 12 - 6 = 6;
        # g(20) = 20 - (10 + 5) = 5; with U = 1 the pattern repeats, so
        # the binding point is A#0's own deadline: slack = 2 (exactly
        # B#0's unused allocation visible before t=4).
        assert exact_slack(state) == pytest.approx(2.0)


class TestHeuristicSafety:
    @pytest.fixture
    def rich_states(self):
        """A batch of structured states to compare the analyses on."""
        tasks = (PeriodicTask("A", wcet=1.0, period=5.0),
                 PeriodicTask("B", wcet=2.0, period=8.0),
                 PeriodicTask("C", wcet=6.0, period=20.0))
        states = []
        for t, actives, releases in [
            (0.0, [(5.0, 1.0), (8.0, 2.0), (20.0, 6.0)],
             {"A": 5.0, "B": 8.0, "C": 20.0}),
            (3.0, [(8.0, 1.5), (20.0, 6.0)],
             {"A": 5.0, "B": 8.0, "C": 20.0}),
            (6.0, [(20.0, 4.0)], {"A": 10.0, "B": 8.0, "C": 20.0}),
            (12.5, [(16.0, 0.7), (20.0, 2.0)],
             {"A": 15.0, "B": 16.0, "C": 20.0}),
        ]:
            states.append(make_state(
                t, [ActiveJob(d, r) for d, r in actives], tasks, releases))
        return states

    def test_heuristic_never_exceeds_exact(self, rich_states):
        for state in rich_states:
            assert heuristic_slack(state) <= exact_slack(state) + 1e-9

    def test_heuristic_nonnegative(self, rich_states):
        for state in rich_states:
            assert heuristic_slack(state) >= 0.0

    def test_heuristic_matches_exact_when_no_future_jobs(self):
        # With all future releases far away the linear bound is exact 0
        # and both analyses see the same candidates.
        task = PeriodicTask("T", wcet=2.0, period=1000.0)
        state = make_state(0.0, [ActiveJob(100.0, 2.0)], (task,),
                           {"T": 1000.0})
        assert heuristic_slack(state) == pytest.approx(exact_slack(state))


class TestDemandFunctions:
    def test_linear_bound_dominates_exact_demand(self, single_task):
        state = make_state(0.0, [ActiveJob(10.0, 2.0)], (single_task,),
                           {"T": 10.0})
        for d in (5.0, 10.0, 15.0, 20.0, 33.0, 50.0):
            assert demand_linear_bound(state, d) >= demand(state, d) - 1e-12

    def test_demand_includes_active_at_deadline(self, single_task):
        state = make_state(0.0, [ActiveJob(10.0, 2.0)], (single_task,),
                           {"T": 10.0})
        assert demand(state, 10.0) == pytest.approx(2.0 + 0.0)
        assert demand(state, 20.0) == pytest.approx(2.0 + 2.0)


class TestScaleTasks:
    def test_scaling_inflates_wcets(self):
        tasks = (PeriodicTask("A", wcet=2.0, period=10.0),)
        scaled = scale_tasks(tasks, 0.5)
        assert scaled[0].wcet == pytest.approx(4.0)
        assert scaled[0].period == 10.0

    def test_infeasible_baseline_rejected(self):
        tasks = (PeriodicTask("A", wcet=6.0, period=10.0),)
        with pytest.raises(ConfigurationError):
            scale_tasks(tasks, 0.5)  # 12 > deadline 10

    def test_invalid_speed_rejected(self):
        tasks = (PeriodicTask("A", wcet=2.0, period=10.0),)
        with pytest.raises(ConfigurationError):
            scale_tasks(tasks, 0.0)
        with pytest.raises(ConfigurationError):
            scale_tasks(tasks, 1.5)


class TestSpeedRules:
    def test_stretch_speed_basic(self):
        assert stretch_speed(2.0, 6.0) == pytest.approx(0.25)

    def test_stretch_speed_no_slack_is_full(self):
        assert stretch_speed(2.0, 0.0) == 1.0

    def test_stretch_speed_min_floor(self):
        assert stretch_speed(1.0, 99.0, min_speed=0.3) == 0.3

    def test_stretch_speed_zero_budget(self):
        assert stretch_speed(0.0, 5.0, min_speed=0.2) == 0.2

    def test_stretch_negative_slack_rejected(self):
        with pytest.raises(ConfigurationError):
            stretch_speed(1.0, -1.0)

    def test_allotted_speed_caps_at_baseline(self):
        # No slack: run exactly at the baseline.
        assert allotted_speed(2.0, 0.5, 0.0) == pytest.approx(0.5)

    def test_allotted_speed_dips_with_slack(self):
        # rem 2 at S=0.5 -> 4 time units; +4 slack -> speed 0.25.
        assert allotted_speed(2.0, 0.5, 4.0) == pytest.approx(0.25)

    def test_allotted_speed_never_exceeds_baseline(self):
        for slack in (0.0, 0.1, 1.0, 10.0):
            assert allotted_speed(3.0, 0.7, slack) <= 0.7 + 1e-12

    def test_allotted_invalid_baseline(self):
        with pytest.raises(ConfigurationError):
            allotted_speed(1.0, 0.0, 1.0)
        with pytest.raises(ConfigurationError):
            allotted_speed(1.0, 1.2, 1.0)
