"""Integration: energy-ordering invariants across policies.

These pin down the qualitative "shape" the reproduction must preserve:
who saves energy relative to whom, and how savings react to the
workload knobs.
"""

import numpy as np
import pytest

from repro.cpu.profiles import ideal_processor
from repro.experiments.energy_norm import jensen_lower_bound
from repro.experiments.runner import run_suite
from repro.policies.registry import ALL_POLICY_NAMES
from repro.tasks.execution import UniformExecution, WorstCaseExecution
from repro.tasks.generators import generate_taskset


def suite(u=0.8, seed=101, low=0.4, horizon=2400.0, n=6):
    ts = generate_taskset(n, u, np.random.default_rng(seed))
    model = UniformExecution(low=low, high=1.0, seed=seed)
    return run_suite(ts, ALL_POLICY_NAMES, ideal_processor(), model,
                     horizon=horizon), ts, model, horizon


class TestGlobalOrdering:
    def test_every_dvs_policy_beats_none(self):
        result, *_ = suite()
        for name in ALL_POLICY_NAMES:
            if name == "none":
                continue
            assert result.normalized(name) < 1.0, name

    def test_dynamic_policies_beat_static(self):
        result, *_ = suite()
        static = result.normalized("static")
        for name in ("ccEDF", "DRA", "laEDF", "lpSEH", "lpSTA",
                     "clairvoyant"):
            assert result.normalized(name) < static + 1e-9, name

    def test_clairvoyant_is_the_floor(self):
        for seed in (101, 202, 303):
            result, *_ = suite(seed=seed)
            oracle = result.normalized("clairvoyant")
            for name in ALL_POLICY_NAMES:
                if name == "clairvoyant":
                    continue
                assert oracle <= result.normalized(name) * 1.02, (
                    f"{name} beat the oracle at seed={seed}")

    def test_jensen_bound_below_everything(self):
        result, ts, model, horizon = suite()
        bound = jensen_lower_bound(ts, model, ideal_processor(), horizon)
        for name in ALL_POLICY_NAMES:
            assert bound <= result.results[name].total_energy + 1e-9

    def test_paper_policies_competitive_with_best_baseline(self):
        # lpSTA must come within 10% of the best baseline policy on a
        # typical workload (it usually wins outright).
        result, *_ = suite()
        best_baseline = min(
            result.normalized(n)
            for n in ("ccEDF", "lppsEDF", "DRA", "laEDF"))
        assert result.normalized("lpSTA") <= best_baseline * 1.10


class TestWorkloadTrends:
    def test_savings_grow_as_bcwc_falls(self):
        # Lower actual demand -> more slack -> lpSTA saves more.
        values = []
        for low in (0.9, 0.5, 0.2):
            result, *_ = suite(low=low, seed=404)
            values.append(result.normalized("lpSTA"))
        assert values[0] > values[1] > values[2]

    def test_energy_rises_with_utilization(self):
        values = []
        for u in (0.4, 0.7, 0.95):
            result, *_ = suite(u=u, seed=505)
            values.append(result.normalized("lpSTA"))
        assert values[0] < values[1] < values[2]

    def test_worst_case_workload_collapses_to_static(self):
        # With every job at WCET no dynamic slack exists: the paper's
        # policy degenerates to statically scaled EDF.
        ts = generate_taskset(6, 0.8, np.random.default_rng(606))
        result = run_suite(ts, ("static", "lpSTA", "lpSEH"),
                           ideal_processor(), WorstCaseExecution(),
                           horizon=2400.0)
        static = result.normalized("static")
        assert result.normalized("lpSTA") == pytest.approx(static,
                                                           rel=1e-6)
        assert result.normalized("lpSEH") == pytest.approx(static,
                                                           rel=1e-6)


class TestSuiteResultApi:
    def test_baseline_is_none(self):
        result, *_ = suite()
        assert result.normalized("none") == pytest.approx(1.0)
        assert result.baseline is result.results["none"]

    def test_miss_counts_zero(self):
        result, *_ = suite()
        for name in ALL_POLICY_NAMES:
            assert result.miss_count(name) == 0
