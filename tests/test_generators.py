"""Tests for repro.tasks.generators."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.tasks.generators import (
    DEFAULT_PERIOD_CHOICES,
    generate_taskset,
    generate_taskset_family,
    grid_periods,
    log_uniform_periods,
    uunifast,
    uunifast_discard,
)


class TestUUniFast:
    def test_sums_to_target(self, rng):
        for u in (0.1, 0.5, 0.95):
            values = uunifast(8, u, rng)
            assert sum(values) == pytest.approx(u)

    def test_all_positive(self, rng):
        for _ in range(50):
            assert all(v > 0 for v in uunifast(5, 0.9, rng))

    def test_single_task_gets_everything(self, rng):
        assert uunifast(1, 0.7, rng) == [pytest.approx(0.7)]

    def test_invalid_inputs(self, rng):
        with pytest.raises(ConfigurationError):
            uunifast(0, 0.5, rng)
        with pytest.raises(ConfigurationError):
            uunifast(3, 0.0, rng)

    def test_distribution_is_symmetric(self, rng):
        # Each slot's marginal mean should be U/n (unbiased simplex).
        n, u, samples = 4, 0.8, 3000
        sums = np.zeros(n)
        for _ in range(samples):
            sums += np.array(uunifast(n, u, rng))
        means = sums / samples
        assert np.allclose(means, u / n, atol=0.02)


class TestUUniFastDiscard:
    def test_respects_per_task_cap(self, rng):
        for _ in range(100):
            values = uunifast_discard(3, 0.99, rng)
            assert max(values) <= 1.0

    def test_impossible_target_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            uunifast_discard(2, 2.5, rng)


class TestPeriods:
    def test_log_uniform_in_range(self, rng):
        periods = log_uniform_periods(200, rng, low=10.0, high=1000.0)
        assert all(10.0 <= p <= 1000.0 for p in periods)

    def test_log_uniform_spreads_decades(self, rng):
        periods = log_uniform_periods(2000, rng, low=10.0, high=1000.0)
        below_100 = sum(1 for p in periods if p < 100.0)
        # Log-uniform: half the mass below the geometric midpoint (100).
        assert below_100 / len(periods) == pytest.approx(0.5, abs=0.05)

    def test_grid_periods_come_from_grid(self, rng):
        periods = grid_periods(100, rng)
        assert all(p in DEFAULT_PERIOD_CHOICES for p in periods)

    def test_invalid_ranges(self, rng):
        with pytest.raises(ConfigurationError):
            log_uniform_periods(5, rng, low=0.0, high=10.0)
        with pytest.raises(ConfigurationError):
            grid_periods(5, rng, choices=[])


class TestGenerateTaskset:
    def test_exact_utilization(self, rng):
        ts = generate_taskset(8, 0.75, rng)
        assert ts.utilization == pytest.approx(0.75)

    def test_task_count_and_names(self, rng):
        ts = generate_taskset(5, 0.5, rng, name_prefix="X")
        assert len(ts) == 5
        assert [t.name for t in ts] == ["X1", "X2", "X3", "X4", "X5"]

    def test_feasibility_enforced(self, rng):
        ts = generate_taskset(6, 1.0, rng)
        ts.assert_feasible_edf()

    def test_invalid_utilization_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            generate_taskset(4, 1.2, rng)
        with pytest.raises(ConfigurationError):
            generate_taskset(4, 0.0, rng)

    def test_reproducible_from_seed(self):
        a = generate_taskset(5, 0.8, np.random.default_rng(3))
        b = generate_taskset(5, 0.8, np.random.default_rng(3))
        assert [(t.wcet, t.period) for t in a] == \
               [(t.wcet, t.period) for t in b]

    def test_continuous_periods_mode(self, rng):
        ts = generate_taskset(5, 0.6, rng, continuous_periods=True,
                              period_range=(20.0, 50.0))
        assert all(20.0 <= t.period <= 50.0 for t in ts)

    def test_wcet_never_exceeds_period(self, rng):
        for _ in range(20):
            ts = generate_taskset(3, 0.99, rng)
            assert all(t.wcet <= t.period for t in ts)


class TestConstrainedDeadlines:
    def test_deadlines_inside_requested_band(self, rng):
        ts = generate_taskset(6, 0.5, rng, deadline_range=(0.6, 0.9))
        for task in ts:
            assert task.deadline <= task.period + 1e-12
            assert task.deadline >= task.wcet - 1e-12

    def test_produces_constrained_set(self, rng):
        ts = generate_taskset(6, 0.5, rng, deadline_range=(0.6, 0.9))
        assert not ts.implicit_deadlines

    def test_result_is_feasible(self, rng):
        from repro.analysis.schedulability import processor_demand_test
        for _ in range(10):
            ts = generate_taskset(5, 0.8, rng,
                                  deadline_range=(0.5, 0.95))
            assert processor_demand_test(ts)
            ts.assert_feasible_edf()

    def test_invalid_range_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            generate_taskset(3, 0.5, rng, deadline_range=(0.0, 0.9))
        with pytest.raises(ConfigurationError):
            generate_taskset(3, 0.5, rng, deadline_range=(0.9, 0.5))


class TestFamily:
    def test_family_size_and_independence(self):
        family = generate_taskset_family(4, 5, 0.7, seed=11)
        assert len(family) == 4
        signatures = {tuple((t.wcet, t.period) for t in ts)
                      for ts in family}
        assert len(signatures) == 4  # all distinct

    def test_family_reproducible(self):
        a = generate_taskset_family(3, 4, 0.6, seed=9)
        b = generate_taskset_family(3, 4, 0.6, seed=9)
        for ts_a, ts_b in zip(a, b):
            assert [(t.wcet, t.period) for t in ts_a] == \
                   [(t.wcet, t.period) for t in ts_b]
