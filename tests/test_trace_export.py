"""Tests for repro.trace: Chrome export, JSONL round-trip, ledger, diff."""

import dataclasses
import json

import pytest

from repro.cpu.profiles import ideal_processor
from repro.errors import ConfigurationError, TraceValidationError
from repro.policies.registry import make_policy
from repro.sim.engine import simulate
from repro.tasks.execution import WorstCaseExecution
from repro.tasks.task import PeriodicTask
from repro.tasks.taskset import TaskSet
from repro.trace import (
    EnergyLedger,
    chrome_trace_events,
    diff_docs,
    diff_traces,
    export_chrome_trace,
    read_trace_jsonl,
    write_trace_jsonl,
)

pytestmark = pytest.mark.trace


@pytest.fixture
def traced_result():
    taskset = TaskSet([PeriodicTask("A", wcet=1.0, period=4.0),
                       PeriodicTask("B", wcet=2.0, period=10.0)])
    return simulate(taskset, ideal_processor(), make_policy("lpSTA"),
                    WorstCaseExecution(), horizon=40.0,
                    record_trace=True)


class TestChromeExport:
    def test_requires_trace(self):
        taskset = TaskSet([PeriodicTask("A", wcet=1.0, period=4.0)])
        result = simulate(taskset, ideal_processor(),
                          make_policy("none"), WorstCaseExecution(),
                          horizon=8.0, record_trace=False)
        with pytest.raises(ConfigurationError):
            chrome_trace_events(result)

    def test_valid_json_with_monotonic_timestamps(self, traced_result,
                                                  tmp_path):
        path = export_chrome_trace(traced_result, tmp_path / "t.json")
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        assert events
        stamps = [e["ts"] for e in events if e["ph"] != "M"]
        assert stamps == sorted(stamps)
        assert all(ts >= 0 for ts in stamps)

    def test_one_lane_per_task_plus_activity_lanes(self, traced_result):
        events = chrome_trace_events(traced_result)
        names = {e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert {"A", "B", "(idle)", "(switch)", "(sleep)",
                "(notes)"} <= names

    def test_speed_counter_track_present(self, traced_result):
        events = chrome_trace_events(traced_result)
        counters = [e for e in events if e["ph"] == "C"]
        assert counters
        assert all(e["name"] == "speed" for e in counters)

    def test_complete_events_cover_busy_time(self, traced_result):
        events = chrome_trace_events(traced_result)
        run_dur = sum(e["dur"] for e in events
                      if e["ph"] == "X" and e["cat"] == "run")
        assert run_dur / 1e6 == pytest.approx(traced_result.busy_time)


class TestJsonlRoundTrip:
    def test_round_trip_preserves_everything(self, traced_result,
                                             tmp_path):
        path = write_trace_jsonl(traced_result, tmp_path / "t.jsonl")
        doc = read_trace_jsonl(path)
        assert doc.policy == traced_result.policy
        assert doc.horizon == traced_result.horizon
        assert doc.segments == tuple(traced_result.trace.segments)
        assert doc.notes == tuple(traced_result.notes)

    def test_truncated_file_detected(self, traced_result, tmp_path):
        path = write_trace_jsonl(traced_result, tmp_path / "t.jsonl")
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-3]) + "\n")
        with pytest.raises(TraceValidationError, match="declares"):
            read_trace_jsonl(path)

    def test_newer_schema_refused(self, traced_result, tmp_path):
        path = write_trace_jsonl(traced_result, tmp_path / "t.jsonl")
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["schema"] = 99
        path.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
        with pytest.raises(TraceValidationError, match="newer"):
            read_trace_jsonl(path)

    def test_non_trace_file_refused(self, tmp_path):
        path = tmp_path / "bogus.jsonl"
        path.write_text(json.dumps({"kind": "run-manifest"}) + "\n")
        with pytest.raises(TraceValidationError, match="not a schedule"):
            read_trace_jsonl(path)


class TestEnergyLedger:
    def test_conserves_total_energy(self, traced_result):
        ledger = traced_result.energy_ledger()
        assert ledger.total == pytest.approx(traced_result.total_energy,
                                             rel=1e-9)
        assert ledger.check(traced_result) == []

    def test_buckets_match_result_decomposition(self, traced_result):
        ledger = traced_result.energy_ledger()
        assert ledger.run == pytest.approx(traced_result.busy_energy,
                                           rel=1e-9)
        assert ledger.idle == pytest.approx(traced_result.idle_energy,
                                            rel=1e-9)
        assert ledger.sleep == pytest.approx(traced_result.sleep_energy,
                                             rel=1e-9)

    def test_per_job_attribution_sums_to_per_task(self, traced_result):
        ledger = traced_result.energy_ledger()
        for task, total in ledger.run_by_task.items():
            jobs = sum(e for job, e in ledger.run_by_job.items()
                       if job.startswith(f"{task}#"))
            assert jobs == pytest.approx(total, rel=1e-9)

    def test_imbalance_reported(self, traced_result):
        ledger = traced_result.energy_ledger()
        broken = dataclasses.replace(
            traced_result, busy_energy=traced_result.busy_energy + 1.0)
        problems = ledger.check(broken)
        assert problems
        assert any("run" in p or "total" in p for p in problems)

    def test_requires_trace(self):
        taskset = TaskSet([PeriodicTask("A", wcet=1.0, period=4.0)])
        result = simulate(taskset, ideal_processor(),
                          make_policy("none"), WorstCaseExecution(),
                          horizon=8.0, record_trace=False)
        with pytest.raises(ConfigurationError):
            EnergyLedger.from_result(result)

    def test_render_mentions_every_task(self, traced_result):
        rendered = traced_result.energy_ledger().render()
        assert "A" in rendered and "B" in rendered
        assert "total" in rendered


class TestDiff:
    def test_identical_traces_have_no_divergence(self, traced_result,
                                                 tmp_path):
        a = read_trace_jsonl(
            write_trace_jsonl(traced_result, tmp_path / "a.jsonl"))
        b = read_trace_jsonl(
            write_trace_jsonl(traced_result, tmp_path / "b.jsonl"))
        assert diff_docs(a, b) is None

    def test_first_divergent_segment_reported(self, traced_result):
        segments = list(traced_result.trace.segments)
        mutated = list(segments)
        mutated[2] = dataclasses.replace(segments[2],
                                         speed=segments[2].speed + 0.1)
        divergence = diff_traces(segments, mutated)
        assert divergence is not None
        assert divergence.index == 2
        assert divergence.field == "speed"

    def test_length_mismatch_reported(self, traced_result):
        segments = list(traced_result.trace.segments)
        divergence = diff_traces(segments, segments[:-1])
        assert divergence is not None
        assert divergence.field == "segment-count"

class TestSweepTimeline:
    def _events(self, tmp_path):
        lines = [
            {"seq": 1, "ts": 100.0, "kind": "parallel.dispatch",
             "chunks": 2, "units": 4, "workers": 2},
            {"seq": 2, "ts": 101.5, "kind": "parallel.chunk",
             "pid": 41, "units": 2, "wall_s": 1.4, "t0": 100.1,
             "t1": 101.5},
            {"seq": 3, "ts": 101.9, "kind": "parallel.chunk",
             "pid": 42, "units": 2, "wall_s": 1.7, "t0": 100.2,
             "t1": 101.9},
            {"seq": 4, "ts": 102.0, "kind": "sweep.checkpoint",
             "index": 0, "x": 0.5},
            {"seq": 5, "ts": 102.1, "kind": "span",
             "name": "sweep.compute", "wall_s": 2.0, "cpu_s": 3.1},
        ]
        path = tmp_path / "events.jsonl"
        path.write_text("\n".join(json.dumps(line) for line in lines)
                        + "\n")
        return path

    def test_worker_lanes_and_monotonic_timestamps(self, tmp_path):
        from repro.trace import export_sweep_timeline
        out = export_sweep_timeline(self._events(tmp_path),
                                    tmp_path / "timeline.json")
        payload = json.loads(out.read_text())
        events = payload["traceEvents"]
        lanes = {e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert {"(sweep)", "worker 41", "worker 42"} <= lanes
        chunk_spans = [e for e in events if e.get("cat") == "worker"]
        assert len(chunk_spans) == 2
        assert all(e["dur"] > 0 for e in chunk_spans)
        stamps = [e["ts"] for e in events if e["ph"] != "M"]
        assert stamps == sorted(stamps)
        assert min(stamps) >= 0

    def test_empty_events_rejected(self, tmp_path):
        from repro.errors import ExperimentError
        from repro.trace import sweep_timeline_events
        empty = tmp_path / "events.jsonl"
        empty.write_text("")
        with pytest.raises(ExperimentError, match="empty"):
            sweep_timeline_events(empty)
        with pytest.raises(ExperimentError, match="cannot read"):
            sweep_timeline_events(tmp_path / "missing.jsonl")


class TestDiffNotes:
    def test_note_divergence_reported(self, traced_result, tmp_path):
        path = write_trace_jsonl(traced_result, tmp_path / "a.jsonl")
        doc_a = read_trace_jsonl(path)
        from repro.sim.tracing import TraceNote
        doc_b = dataclasses.replace(
            doc_a, notes=doc_a.notes + (TraceNote(1.0, "governor",
                                                  "x"),))
        divergence = diff_docs(doc_a, doc_b)
        assert divergence is not None
        assert divergence.field == "note-count"
