#!/usr/bin/env python
"""CI gate: the compiled engine core is byte-identical to the interpreted one.

Runs one EXP-F1 mini-cell (several utilizations x seeds, slack-analysis
policies included) and one fault-matrix cell (WCET overruns + stuck
speed transitions under a governed policy, misses allowed) through
``sweep()`` with the compiled core forced off and forced on — serially
and on the parallel executor — and fails unless every cell fingerprint
matches bit for bit.  The compiled-on runs are instrumented through
``fastcore.RUN_COUNTS`` to prove the C core actually executed (a gate
that silently fell back to the interpreted loop twice would compare
the interpreter against itself and pass vacuously).

When the extension is missing the gate first tries to build it in
place (``REPRO_COMPILE=1 setup.py build_ext --inplace``); without a C
toolchain it skips with a loud notice — the interpreted engine is the
contract on such hosts, and there is nothing to compare.

Usage: PYTHONPATH=src python scripts/compiled_gate.py
"""

from __future__ import annotations

import hashlib
import importlib
import json
import os
import shutil
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

XS = (0.3, 0.7, 0.9)
FM_XS = (1.3,)
N_TASKSETS = 4
HORIZON = 600.0
POLICIES = ("none", "static", "ccEDF", "lpSTA", "lpSEH")
FM_POLICIES = ("ccEDF", "lpSEH", "lpSTA")


def ensure_extension() -> str:
    """Import-or-build the extension; returns 'ok', 'built' or 'no-toolchain'."""
    try:
        import repro.sim._fastcore  # noqa: F401
        return "ok"
    except ImportError:
        pass
    if shutil.which("gcc") is None and shutil.which("cc") is None:
        return "no-toolchain"
    env = dict(os.environ, REPRO_COMPILE="1")
    proc = subprocess.run(
        [sys.executable, "setup.py", "build_ext", "--inplace"],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True)
    if proc.returncode != 0:
        print(proc.stdout[-2000:])
        print(proc.stderr[-2000:])
        return "no-toolchain"
    importlib.invalidate_caches()
    try:
        import repro.sim._fastcore  # noqa: F401
        return "built"
    except ImportError:
        return "no-toolchain"


def fingerprint(cells) -> str:
    digest = hashlib.blake2b(digest_size=16)
    for cell in cells:
        digest.update(json.dumps(cell.to_payload()).encode())
    return digest.hexdigest()


def main() -> int:
    status = ensure_extension()
    if status == "no-toolchain":
        print("=" * 64)
        print("compiled gate: SKIPPED — no C toolchain / extension "
              "unavailable;")
        print("the interpreted engine is the contract on this host.")
        print("=" * 64)
        return 0
    if status == "built":
        print("compiled gate: built repro.sim._fastcore in place")

    from repro.experiments.parallel import fork_available, shutdown_pool
    from repro.experiments.runner import bcwc_model, standard_taskset, sweep
    from repro.faults import FaultPlan
    from repro.faults.plan import OverrunFault, TransitionFault
    from repro.policies.registry import make_policy
    from repro.sim import fastcore

    def workload(u: float, seed: int):
        return standard_taskset(8, u, seed), bcwc_model(0.5, seed)

    def fm_workload(x: float, seed: int):
        return standard_taskset(6, 0.65, seed), bcwc_model(0.5, seed)

    def fm_faults(x: float, seed: int):
        return FaultPlan(
            seed=seed,
            overrun=OverrunFault(factor=x, probability=0.3),
            transition=TransitionFault(stuck_probability=0.2))

    def fm_policy_factory(x: float):
        return lambda name: make_policy(name, governed=True,
                                        governor_margin=max(1.0, float(x)))

    def exp1(workers: int | None = None):
        kwargs = {"n_tasksets": N_TASKSETS, "horizon": HORIZON}
        if workers:
            kwargs["workers"] = workers
        return sweep(XS, workload, POLICIES, **kwargs)

    def faultmatrix(workers: int | None = None):
        kwargs = {"n_tasksets": N_TASKSETS, "horizon": HORIZON,
                  "allow_misses": True, "faults_factory": fm_faults,
                  "policy_factory": fm_policy_factory}
        if workers:
            kwargs["workers"] = workers
        return sweep(FM_XS, fm_workload, FM_POLICIES, **kwargs)

    def run_mode(compiled: bool, leg, workers: int | None = None) -> tuple:
        """One sweep leg under a forced backend; returns (fp, runs)."""
        os.environ["REPRO_COMPILED"] = "1" if compiled else "0"
        before = fastcore.RUN_COUNTS["compiled"]
        try:
            fp = fingerprint(leg(workers))
        finally:
            os.environ.pop("REPRO_COMPILED", None)
            if workers:
                # The warm pool snapshots env at fork: never reuse a
                # pool across backend flips.
                shutdown_pool()
        return fp, fastcore.RUN_COUNTS["compiled"] - before

    failures = []

    def check(label: str, ok: bool, detail: str = "") -> None:
        print(f"{'ok  ' if ok else 'FAIL'} {label}"
              + (f": {detail}" if detail and not ok else ""))
        if not ok:
            failures.append(label)

    interp_fp, interp_runs = run_mode(False, exp1)
    compiled_fp, compiled_runs = run_mode(True, exp1)
    check("interpreted leg stayed interpreted", interp_runs == 0,
          f"{interp_runs} compiled run(s) under REPRO_COMPILED=0")
    check("compiled core engaged", compiled_runs > 0,
          "0 compiled runs despite the extension being importable")
    check("EXP-F1 cell byte-identical", compiled_fp == interp_fp,
          f"{compiled_fp} != {interp_fp}")

    fm_interp_fp, _ = run_mode(False, faultmatrix)
    fm_compiled_fp, fm_runs = run_mode(True, faultmatrix)
    check("fault-matrix compiled core engaged", fm_runs > 0)
    check("fault-matrix cell byte-identical",
          fm_compiled_fp == fm_interp_fp,
          f"{fm_compiled_fp} != {fm_interp_fp}")

    if fork_available():
        par_interp_fp, _ = run_mode(False, exp1, workers=2)
        par_compiled_fp, _ = run_mode(True, exp1, workers=2)
        check("parallel interpreted byte-identical",
              par_interp_fp == interp_fp)
        check("parallel compiled byte-identical",
              par_compiled_fp == interp_fp,
              f"{par_compiled_fp} != {interp_fp}")
        fm_par_fp, _ = run_mode(True, faultmatrix, workers=2)
        check("parallel fault-matrix byte-identical",
              fm_par_fp == fm_interp_fp,
              f"{fm_par_fp} != {fm_interp_fp}")

    if failures:
        print(f"compiled gate: {len(failures)} contract(s) broken")
        return 1
    print(f"compiled gate: {compiled_runs + fm_runs} compiled run(s), "
          f"fingerprints equal (serial and parallel, plain and "
          f"fault-injected)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
