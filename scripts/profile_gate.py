#!/usr/bin/env python
"""CI gate: the profiling layer is free when off and honest when on.

Checks the profiling contract (DESIGN.md §15) on one EXP-F1 mini-cell
and on the ``engine_step`` anchor workload:

* result purity — cells from profiled runs (serial and parallel) are
  byte-identical to an unprofiled run: profiling is pure
  observability, never part of the result;
* budget invariant — the time-budget categories of a profiled serial
  sweep sum exactly to the attributed wall time, and the attributed
  wall stays within epsilon of the measured wall clock;
* comparable folds — serial and parallel runs fold to the same
  deterministic phase counts (same units, same policy decisions), so
  attributions are comparable across execution modes;
* zero-cost-off — with profiling disabled the engine anchor pays
  nothing measurable (off must not be slower than on; the *absolute*
  off-overhead guard is bench_record's ``engine_step`` regression
  check against the checked-in baseline, which always runs with
  profiling off);
* bounded-cost-on — with phase timers enabled the anchor stays under
  the declared ``OVERHEAD_BUDGET`` multiplier.

Exits non-zero listing every broken contract.

Usage: PYTHONPATH=src python scripts/profile_gate.py
"""

from __future__ import annotations

import hashlib
import json
import sys
import time

from repro.cpu.profiles import ideal_processor
from repro.experiments.parallel import fork_available, shutdown_pool
from repro.experiments.runner import bcwc_model, standard_taskset, sweep
from repro.policies.registry import make_policy
from repro.profiling import OVERHEAD_BUDGET, PROFILER
from repro.profiling.report import profile_block
from repro.sim import fastcore
from repro.sim.engine import simulate

XS = (0.3, 0.7)
N_TASKSETS = 3
HORIZON = 300.0
POLICIES = ("none", "static", "lpSTA")
UNITS = len(XS) * N_TASKSETS

#: Anchor timing: min-of-N absorbs scheduler noise; the additive slop
#: keeps sub-10ms runs from failing on timer jitter alone.
ANCHOR_ROUNDS = 5
ANCHOR_HORIZON = 600.0
NOISE_SLOP_S = 0.005


def workload(u: float, seed: int):
    return standard_taskset(6, u, seed), bcwc_model(0.5, seed)


def fingerprint(cells) -> str:
    digest = hashlib.blake2b(digest_size=16)
    for cell in cells:
        digest.update(json.dumps(cell.to_payload()).encode())
    return digest.hexdigest()


def run(workers: int):
    try:
        return sweep(XS, workload, POLICIES, n_tasksets=N_TASKSETS,
                     horizon=HORIZON, workers=workers,
                     workload_id="profile-gate")
    finally:
        if workers > 1:
            shutdown_pool()


def anchor_once() -> float:
    """One ``engine_step``-shaped simulation, interpreted loop pinned."""
    taskset = standard_taskset(8, 0.7, 20020311)
    model = bcwc_model(0.5, 20020311)
    t0 = time.perf_counter()
    with fastcore.forced(False):
        simulate(taskset, ideal_processor(), make_policy("static"),
                 model, horizon=ANCHOR_HORIZON)
    return time.perf_counter() - t0


def anchor_min() -> float:
    return min(anchor_once() for _ in range(ANCHOR_ROUNDS))


def phase_counts(delta: dict) -> dict[str, int]:
    """Deterministic per-phase counts — timing-free fold substance."""
    return {name: stats["count"]
            for name, stats in sorted(delta.get("phases", {}).items())
            if name in ("unit.workload", "policy.decide", "slack.exact",
                        "slack.heuristic", "cache.lookup")}


def main() -> int:
    failures = []

    def check(label: str, ok: bool, detail: str = "") -> None:
        print(f"{'ok  ' if ok else 'FAIL'} {label}"
              + (f": {detail}" if detail and not ok else ""))
        if not ok:
            failures.append(label)

    workers = 2 if fork_available() else 1
    if workers == 1:
        print("profile gate: no fork on this host; gating the serial "
              "fold only")

    # --- result purity + budget invariant + comparable folds -------
    bare_cells = run(1)
    bare_fp = fingerprint(bare_cells)

    PROFILER.configure(enabled=True)
    try:
        before = PROFILER.snapshot()
        t0 = time.perf_counter()
        ser_cells = run(1)
        measured_wall = time.perf_counter() - t0
        ser_delta = PROFILER.delta_since(before)

        before = PROFILER.snapshot()
        par_cells = run(workers)
        par_delta = PROFILER.delta_since(before)
    finally:
        PROFILER.configure(enabled=False)
        PROFILER.reset()

    check("cells byte-identical with profiling on (serial)",
          fingerprint(ser_cells) == bare_fp,
          "profiled serial run changed simulation results")
    check("cells byte-identical with profiling on (parallel)",
          fingerprint(par_cells) == bare_fp,
          "profiled parallel run changed simulation results")

    block = profile_block(ser_delta)
    budget_sum = sum(block["budget"].values())
    check("budget categories sum to attributed wall",
          abs(budget_sum - block["wall_s"]) < 1e-9,
          f"sum={budget_sum:.6f}s wall_s={block['wall_s']:.6f}s")
    check("attributed wall within epsilon of measured wall",
          abs(block["wall_s"] - measured_wall)
          <= 0.10 * measured_wall + 0.05,
          f"attributed={block['wall_s']:.4f}s "
          f"measured={measured_wall:.4f}s")

    if workers > 1:
        check("serial and parallel folds agree on phase counts",
              phase_counts(ser_delta) == phase_counts(par_delta),
              f"serial={phase_counts(ser_delta)} "
              f"parallel={phase_counts(par_delta)}")

    # --- overhead contract on the engine anchor --------------------
    anchor_once()  # warm imports and allocator before timing
    off_min = anchor_min()
    PROFILER.configure(enabled=True)
    try:
        on_min = anchor_min()
    finally:
        PROFILER.configure(enabled=False)
        PROFILER.reset()

    check("profiling off adds no measurable overhead",
          off_min <= on_min * 1.10 + NOISE_SLOP_S,
          f"off={off_min * 1e3:.2f}ms on={on_min * 1e3:.2f}ms — "
          f"the disabled path should never lose to the enabled one")
    check(f"profiling on stays under {OVERHEAD_BUDGET:.1f}x budget",
          on_min <= off_min * OVERHEAD_BUDGET + NOISE_SLOP_S,
          f"on={on_min * 1e3:.2f}ms off={off_min * 1e3:.2f}ms "
          f"budget={OVERHEAD_BUDGET:.1f}x")

    if failures:
        print(f"profile gate: {len(failures)} contract(s) broken")
        return 1
    print(f"profile gate: {UNITS} units profiled, fingerprints equal, "
          f"budget sums exactly, anchor off={off_min * 1e3:.2f}ms "
          f"on={on_min * 1e3:.2f}ms")
    return 0


if __name__ == "__main__":
    sys.exit(main())
