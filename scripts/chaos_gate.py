#!/usr/bin/env python
"""CI gate: a sweep survives an injected worker crash and a hang.

Runs a small parallel sweep under a deterministic chaos plan
(:mod:`repro.experiments.chaos`) chosen so that exactly one unit kills
its worker mid-flight (SIGKILL-style ``os._exit``) and one distinct
unit hangs past its per-unit deadline.  At-most-once markers make every
re-dispatch run clean, so the gate demands full recovery: the sweep
must *complete*, quarantine nothing, and produce cells byte-identical
to a clean serial run — while the ``resilience.*`` counters prove the
supervision paths actually fired (a pool rebuild and a unit timeout).

Exits non-zero on the first broken contract, printing what diverged,
so a supervision or determinism regression fails fast CI even when a
plain test run happens not to exercise the recovery paths.

Usage: PYTHONPATH=src python scripts/chaos_gate.py
"""

from __future__ import annotations

import hashlib
import json
import sys
import tempfile
from pathlib import Path

from repro.experiments import chaos
from repro.experiments.chaos import (
    _CRASH_SALT,
    _HANG_SALT,
    ChaosPlan,
    CrashChaos,
    HangChaos,
    _draw,
)
from repro.experiments.parallel import fork_available, shutdown_pool
from repro.experiments.runner import (
    bcwc_model,
    standard_taskset,
    sweep,
    taskset_seeds,
)
from repro.telemetry import TELEMETRY

XS = (0.4, 0.7)
N_TASKSETS = 2
HORIZON = 200.0
POLICIES = ("static", "lpSTA")
PROBABILITY = 0.25


def workload(u: float, seed: int):
    return standard_taskset(4, u, seed), bcwc_model(0.5, seed)


def fingerprint(cells) -> str:
    digest = hashlib.blake2b(digest_size=16)
    for cell in cells:
        digest.update(json.dumps(cell.to_payload()).encode())
    return digest.hexdigest()


def pick_plan_seed() -> tuple[int, tuple, tuple]:
    """A plan seed whose crash and hang each hit exactly one distinct unit.

    The chaos draw is a pure hash of (plan seed, salt, unit key), so
    the doomed units are computable up front; scanning seeds keeps the
    gate independent of hash details.
    """
    units = [(float(x), seed)
             for x in XS for seed in taskset_seeds(2002, N_TASKSETS)]
    for plan_seed in range(5000):
        crash = [u for u in units
                 if _draw(plan_seed, _CRASH_SALT,
                          f"{u[0]!r}:{u[1]}") < PROBABILITY]
        hang = [u for u in units
                if _draw(plan_seed, _HANG_SALT,
                         f"{u[0]!r}:{u[1]}") < PROBABILITY]
        if len(crash) == 1 and len(hang) == 1 and crash[0] != hang[0]:
            return plan_seed, crash[0], hang[0]
    raise SystemExit("chaos gate: no suitable plan seed in 0..4999")


def main() -> int:
    if not fork_available():
        print("chaos gate: fork() unavailable; skipping")
        return 0

    reference = sweep(XS, workload, POLICIES, n_tasksets=N_TASKSETS,
                      horizon=HORIZON)
    clean = fingerprint(reference)

    plan_seed, crash_unit, hang_unit = pick_plan_seed()
    print(f"chaos gate: plan seed {plan_seed} — crash on "
          f"x={crash_unit[0]:g} seed={crash_unit[1]}, hang on "
          f"x={hang_unit[0]:g} seed={hang_unit[1]}")

    def chaotic_sweep(plan: ChaosPlan):
        with chaos.active(plan):
            return sweep(XS, workload, POLICIES,
                         n_tasksets=N_TASKSETS, horizon=HORIZON,
                         workers=2, unit_timeout=1.0, max_retries=1,
                         retry_backoff=0.01, on_failure="quarantine")

    TELEMETRY.reset()
    TELEMETRY.configure(enabled=True)
    try:
        with tempfile.TemporaryDirectory() as markers:
            plan = ChaosPlan(seed=plan_seed,
                             crash=CrashChaos(probability=PROBABILITY),
                             hang=HangChaos(probability=PROBABILITY,
                                            duration=30.0),
                             marker_dir=markers)
            cells = chaotic_sweep(plan)
            fired = sorted(p.name for p in Path(markers).glob("fired_*"))
        # The crash can break the pool while the hang's chunk is in
        # flight, losing that worker's counter delta — so prove the
        # deadline path on its own, with a hang-only plan the pool
        # survives intact.
        with tempfile.TemporaryDirectory() as markers:
            hang_cells = chaotic_sweep(ChaosPlan(
                seed=plan_seed,
                hang=HangChaos(probability=PROBABILITY, duration=30.0),
                marker_dir=markers))
    finally:
        shutdown_pool()
        TELEMETRY.configure(enabled=False)

    failures = []

    def check(label: str, ok: bool, detail: str = "") -> None:
        print(f"{'ok  ' if ok else 'FAIL'} {label}"
              + (f": {detail}" if detail and not ok else ""))
        if not ok:
            failures.append(label)

    check("crash injected", any(n.startswith("fired_crash_")
                                for n in fired), f"markers={fired}")
    check("hang injected", any(n.startswith("fired_hang_")
                               for n in fired), f"markers={fired}")
    quarantined = [r for cell in cells + hang_cells
                   for r in cell.quarantined]
    check("nothing quarantined", not quarantined,
          f"{len(quarantined)} record(s): "
          f"{[r['error_type'] for r in quarantined]}")
    chaotic = fingerprint(cells)
    check("byte-identical to clean run", chaotic == clean,
          f"{chaotic} != {clean}")
    check("hang-only run byte-identical",
          fingerprint(hang_cells) == clean,
          f"{fingerprint(hang_cells)} != {clean}")
    check("pool rebuilt under supervision",
          TELEMETRY.counter("resilience.pool_rebuilds") >= 1,
          "resilience.pool_rebuilds == 0")
    check("hang cut by unit deadline",
          TELEMETRY.counter("resilience.unit_timeouts") >= 1,
          "resilience.unit_timeouts == 0")

    if failures:
        print(f"chaos gate: {len(failures)} contract(s) broken")
        return 1
    print("chaos gate: crash and hang recovered, results byte-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
