#!/usr/bin/env python
"""CI gate: a sweep's progress stream narrates exactly what happened.

Runs one EXP-F1 mini-cell on the parallel executor (``--workers 2``,
cold cache) with the progress stream enabled and fails unless the
stream holds to its contract (DESIGN.md §14):

* structurally valid — only schema-known event kinds, strictly
  increasing ``seq``, non-decreasing ``ts``, one ``sweep.start``
  first, one terminal ``sweep.done``;
* complete — the completed-unit count equals the sweep's cell x seed
  unit count, every cell reports done, and the parallel run's
  ``chunk.dispatch`` events actually appear;
* consistent — the reader's terminal snapshot equals the run
  manifest's ``progress`` block field for field (the block is defined
  as the stream's ``sweep.done`` summary repeated verbatim, so any
  drift means the writer and the runner disagree about what ran);
* equivalent — a serial run of the same sweep yields the same
  {unit.done, cell.done, cell.resumed} event substance and
  byte-identical cells;
* off-switch — a sweep with no progress/checkpoint/telemetry
  directory writes no stream and produces byte-identical cells (the
  stream is pure observability, never part of the result).

Exits non-zero on the first broken contract, printing what diverged.

Usage: PYTHONPATH=src python scripts/progress_gate.py
"""

from __future__ import annotations

import hashlib
import json
import sys
import tempfile
from pathlib import Path

from repro.experiments.parallel import fork_available, shutdown_pool
from repro.experiments.runner import bcwc_model, standard_taskset, sweep
from repro.telemetry import TELEMETRY
from repro.telemetry.manifest import RunManifest
from repro.telemetry.progress import (
    PROGRESS_FILENAME,
    read_progress,
    validate_stream,
)

XS = (0.3, 0.7)
N_TASKSETS = 3
HORIZON = 300.0
POLICIES = ("none", "static", "lpSTA")
UNITS = len(XS) * N_TASKSETS


def workload(u: float, seed: int):
    return standard_taskset(6, u, seed), bcwc_model(0.5, seed)


def fingerprint(cells) -> str:
    digest = hashlib.blake2b(digest_size=16)
    for cell in cells:
        digest.update(json.dumps(cell.to_payload()).encode())
    return digest.hexdigest()


def run(directory: Path | None, workers: int):
    kwargs = {}
    if directory is not None:
        kwargs["progress_dir"] = directory
    try:
        return sweep(XS, workload, POLICIES, n_tasksets=N_TASKSETS,
                     horizon=HORIZON, workers=workers,
                     workload_id="progress-gate", **kwargs)
    finally:
        if workers > 1:
            shutdown_pool()


def event_substance(path: Path) -> list[tuple]:
    events = []
    for line in path.read_text().splitlines():
        event = json.loads(line)
        if event["kind"] == "unit.done":
            events.append(("unit.done", event["index"],
                           event["seed_pos"], event["status"]))
        elif event["kind"] in ("cell.done", "cell.resumed"):
            events.append((event["kind"], event["index"]))
    return sorted(events)


def main() -> int:
    failures = []

    def check(label: str, ok: bool, detail: str = "") -> None:
        print(f"{'ok  ' if ok else 'FAIL'} {label}"
              + (f": {detail}" if detail and not ok else ""))
        if not ok:
            failures.append(label)

    workers = 2 if fork_available() else 1
    if workers == 1:
        print("progress gate: no fork on this host; gating the serial "
              "stream only")

    with tempfile.TemporaryDirectory(prefix="progress-gate-") as tmp:
        tmp = Path(tmp)
        par_dir = tmp / "parallel"
        ser_dir = tmp / "serial"

        TELEMETRY.configure(enabled=True, manifest_dir=str(par_dir))
        try:
            par_cells = run(par_dir, workers)
        finally:
            TELEMETRY.configure(enabled=False)
            TELEMETRY.reset()
        ser_cells = run(ser_dir, 1)
        bare_cells = run(None, 1)

        stream = par_dir / PROGRESS_FILENAME
        problems = validate_stream(stream)
        check("stream schema-valid and time-monotonic", not problems,
              "; ".join(problems[:5]))

        snap = read_progress(par_dir)
        check("sweep completed", snap.finished
              and snap.status == "completed",
              f"status={snap.status} finished={snap.finished}")
        check("completed units == cell unit count",
              snap.done == UNITS and snap.computed == UNITS,
              f"done={snap.done} computed={snap.computed} "
              f"expected={UNITS}")
        check("every cell reported done",
              snap.cells_done == snap.cells == len(XS)
              and all(c.done == N_TASKSETS for c in snap.per_cell),
              f"cells_done={snap.cells_done} "
              f"per_cell={[c.done for c in snap.per_cell]}")
        check("no corrupt lines", snap.corrupt_lines == 0,
              f"{snap.corrupt_lines} corrupt line(s)")
        if workers > 1:
            kinds = {json.loads(line)["kind"]
                     for line in stream.read_text().splitlines()}
            check("parallel dispatch narrated",
                  "chunk.dispatch" in kinds,
                  f"kinds seen: {sorted(kinds)}")

        manifests = sorted(par_dir.glob("manifest_*.json"))
        check("run manifest written", bool(manifests))
        if manifests:
            manifest = RunManifest.load(manifests[-1])
            check("manifest progress block == terminal snapshot",
                  manifest.progress == snap.summary(),
                  f"manifest={manifest.progress} "
                  f"snapshot={snap.summary()}")

        check("serial stream equivalent",
              event_substance(ser_dir / PROGRESS_FILENAME)
              == event_substance(stream),
              "serial and parallel unit/cell event sets differ")

        fp = fingerprint(ser_cells)
        check("cells byte-identical across modes",
              fingerprint(par_cells) == fp
              and fingerprint(bare_cells) == fp,
              "narrated/parallel/bare runs disagree on results")
        check("no stream without a directory",
              not Path(PROGRESS_FILENAME).exists(),
              "a bare sweep wrote progress.jsonl into the cwd")

    if failures:
        print(f"progress gate: {len(failures)} contract(s) broken")
        return 1
    print(f"progress gate: {UNITS} units narrated, stream valid, "
          f"snapshot == manifest, fingerprints equal")
    return 0


if __name__ == "__main__":
    sys.exit(main())
