#!/usr/bin/env python
"""CI gate: spot-audit reference sweep cells for schedule violations.

Runs the invariant auditor (:func:`repro.analysis.audit_trace`) over
two representative cells — one clean EXP-F1-style utilization cell and
one fault-matrix cell (overrun + stuck-transition faults under the
safety governor) — under every online policy plus the references.
Exits non-zero on the first violation, printing the structured report,
so a scheduling or accounting regression fails fast CI even when the
aggregate energy numbers still look plausible.

Usage: PYTHONPATH=src python scripts/trace_audit_gate.py
"""

from __future__ import annotations

import sys

from repro.analysis import render_violations, run_and_audit
from repro.cpu.profiles import ideal_processor
from repro.experiments.runner import standard_taskset, taskset_seeds
from repro.faults import FaultPlan
from repro.faults.plan import OverrunFault, TransitionFault
from repro.policies.registry import ALL_POLICY_NAMES, make_policy
from repro.sim.engine import Simulator
from repro.tasks.execution import model_for_bcwc_ratio

HORIZON = 120.0


def audit_cell(label: str, *, utilization: float, seed: int,
               faults: FaultPlan | None, governed: bool) -> int:
    taskset = standard_taskset(5, utilization, seed)
    model = model_for_bcwc_ratio(0.5, seed=seed)
    failures = 0
    for name in ALL_POLICY_NAMES:
        policy = make_policy(name, governed=governed)
        sim = Simulator(taskset, ideal_processor(), policy, model,
                        horizon=HORIZON, record_trace=True,
                        allow_misses=True, faults=faults)
        _, violations = run_and_audit(sim)
        if violations:
            failures += 1
            print(f"FAIL {label}/{name}")
            print(render_violations(violations))
        else:
            print(f"ok   {label}/{name}")
    return failures


def main() -> int:
    seed = taskset_seeds(2002, 1)[0]
    failures = audit_cell("exp-f1(u=0.6)", utilization=0.6, seed=seed,
                          faults=None, governed=False)
    failures += audit_cell(
        "fault-matrix(overrun+stuck)", utilization=0.6, seed=seed,
        faults=FaultPlan(
            seed=7,
            overrun=OverrunFault(factor=1.4, probability=0.3),
            transition=TransitionFault(stuck_probability=0.2)),
        governed=True)
    if failures:
        print(f"trace audit gate: {failures} policy run(s) violated "
              f"schedule invariants")
        return 1
    print("trace audit gate: all runs clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
