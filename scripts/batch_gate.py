#!/usr/bin/env python
"""CI gate: the batch engine is byte-identical to the scalar engine.

Runs one EXP-F1 mini-cell (several utilizations x seeds, the four
batch-eligible policies plus one scalar-only policy) through
``sweep()`` twice — ``batch="on"`` and ``batch="off"`` — serially and
on the parallel executor, and fails unless every cell fingerprint
matches bit for bit.  The forced-on runs are instrumented to prove the
vector engine actually executed (a gate that silently falls back to
scalar twice would compare the scalar engine against itself and pass
vacuously).

Exits non-zero on the first broken contract, printing what diverged,
so a batch-kernel regression fails fast CI even when the differential
unit tests happen not to cover the diverging expression.

Usage: PYTHONPATH=src python scripts/batch_gate.py
"""

from __future__ import annotations

import hashlib
import json
import sys

from repro.experiments import runner as runner_mod
from repro.experiments.parallel import fork_available, shutdown_pool
from repro.experiments.runner import bcwc_model, standard_taskset, sweep
from repro.sim.batch import batch_available, run_batch_suites

XS = (0.3, 0.7, 0.9)
N_TASKSETS = 4
HORIZON = 600.0
POLICIES = ("none", "static", "ccEDF", "lpSTA", "lpSEH")


def workload(u: float, seed: int):
    return standard_taskset(8, u, seed), bcwc_model(0.5, seed)


def fingerprint(cells) -> str:
    digest = hashlib.blake2b(digest_size=16)
    for cell in cells:
        digest.update(json.dumps(cell.to_payload()).encode())
    return digest.hexdigest()


class BatchProbe:
    """Counts batch invocations and the seeds the engine reproduced."""

    def __init__(self) -> None:
        self.calls = 0
        self.batched = 0
        self.fallbacks = 0

    def __enter__(self) -> "BatchProbe":
        def probe(*args, **kwargs):
            self.calls += 1
            rows = run_batch_suites(*args, **kwargs)
            if rows is not None:
                self.batched += sum(r is not None for r in rows)
                self.fallbacks += sum(r is None for r in rows)
            return rows

        runner_mod.run_batch_suites = probe
        return self

    def __exit__(self, *exc) -> None:
        runner_mod.run_batch_suites = run_batch_suites


def main() -> int:
    if not batch_available():
        print("batch gate: numpy unavailable; scalar fallback is the "
              "contract — skipping")
        return 0

    scalar = fingerprint(sweep(XS, workload, POLICIES,
                               n_tasksets=N_TASKSETS, horizon=HORIZON,
                               batch="off"))
    with BatchProbe() as probe:
        batched = fingerprint(sweep(XS, workload, POLICIES,
                                    n_tasksets=N_TASKSETS,
                                    horizon=HORIZON, batch="on"))
    parallel_fp = None
    if fork_available():
        try:
            parallel_fp = fingerprint(sweep(
                XS, workload, POLICIES, n_tasksets=N_TASKSETS,
                horizon=HORIZON, batch="on", workers=2))
        finally:
            shutdown_pool()

    failures = []

    def check(label: str, ok: bool, detail: str = "") -> None:
        print(f"{'ok  ' if ok else 'FAIL'} {label}"
              + (f": {detail}" if detail and not ok else ""))
        if not ok:
            failures.append(label)

    check("batch engine engaged", probe.calls == len(XS),
          f"{probe.calls} batch call(s) for {len(XS)} cells")
    check("most seeds vectorized",
          probe.batched >= 0.75 * len(XS) * N_TASKSETS,
          f"only {probe.batched}/{len(XS) * N_TASKSETS} seeds batched "
          f"({probe.fallbacks} scalar fallbacks)")
    check("batch byte-identical to scalar", batched == scalar,
          f"{batched} != {scalar}")
    if parallel_fp is not None:
        check("parallel batch byte-identical", parallel_fp == scalar,
              f"{parallel_fp} != {scalar}")

    if failures:
        print(f"batch gate: {len(failures)} contract(s) broken")
        return 1
    print(f"batch gate: {probe.batched} seed(s) vectorized, "
          f"{probe.fallbacks} scalar fallback(s), fingerprints equal")
    return 0


if __name__ == "__main__":
    sys.exit(main())
