#!/usr/bin/env python
"""Record the repo's performance trajectory into ``BENCH_<date>.json``.

Runs the hot-path microbenchmarks (``benchmarks/bench_hotpath.py``
under pytest-benchmark) plus a wall-clock timing of a miniature EXP-F1
sweep (serial and, when the executor supports it, ``workers=4``), and
writes one JSON record so speedups are tracked PR-over-PR::

    python scripts/bench_record.py                    # BENCH_<today>.json
    python scripts/bench_record.py --label baseline   # BENCH_<today>.baseline.json
    python scripts/bench_record.py --compare BENCH_old.json
    python scripts/bench_record.py --check BENCH_old.json  # CI guard

``--check`` re-runs the benchmarks and exits non-zero when the
``engine_step`` mean degrades by more than ``--max-regression``
(default 25%) against the given record — the guard ``scripts/ci_fast.sh``
runs on every fast loop.
"""

from __future__ import annotations

import argparse
import datetime as _dt
import inspect
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Mini EXP-F1 sweep used for the wall-clock number: big enough that
#: per-cell costs dominate pool startup, small enough for CI.
SWEEP_UTILIZATIONS = (0.3, 0.5, 0.7, 0.9)
SWEEP_TASKSETS = 3
SWEEP_HORIZON = 1200.0
SWEEP_WORKERS = 4


def _git_rev() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=REPO,
            capture_output=True, text=True, check=True).stdout.strip()
    except Exception:
        return "unknown"


def run_hotpath_benchmarks() -> dict[str, dict[str, float]]:
    """Run pytest-benchmark on bench_hotpath and return per-bench stats."""
    with tempfile.TemporaryDirectory() as tmp:
        out = Path(tmp) / "bench.json"
        cmd = [sys.executable, "-m", "pytest",
               str(REPO / "benchmarks" / "bench_hotpath.py"),
               "-q", "--benchmark-only", "-p", "no:cacheprovider",
               f"--benchmark-json={out}"]
        env = os.environ.copy()
        env["PYTHONPATH"] = os.pathsep.join(
            [str(REPO / "src")]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
        proc = subprocess.run(cmd, cwd=REPO, capture_output=True,
                              text=True, env=env)
        if proc.returncode != 0:
            sys.stderr.write(proc.stdout + proc.stderr)
            raise SystemExit(f"hot-path benchmarks failed "
                             f"(exit {proc.returncode})")
        payload = json.loads(out.read_text())
    stats: dict[str, dict[str, float]] = {}
    for bench in payload["benchmarks"]:
        name = bench["name"].removeprefix("test_")
        stats[name] = {
            "mean_s": bench["stats"]["mean"],
            "stddev_s": bench["stats"]["stddev"],
            "min_s": bench["stats"]["min"],
            "rounds": bench["stats"]["rounds"],
        }
    return stats


def _sweep_once(workers: int | None) -> float:
    from repro.experiments.config import DEFAULT_POLICIES
    from repro.experiments.runner import bcwc_model, standard_taskset, sweep

    def workload(u: float, seed: int):
        return (standard_taskset(8, u, seed), bcwc_model(0.5, seed))

    kwargs = {}
    if workers is not None:
        if "workers" not in inspect.signature(sweep).parameters:
            return float("nan")  # executor not available in this revision
        kwargs["workers"] = workers
    started = time.perf_counter()
    sweep(SWEEP_UTILIZATIONS, workload, DEFAULT_POLICIES,
          n_tasksets=SWEEP_TASKSETS, horizon=SWEEP_HORIZON, **kwargs)
    return time.perf_counter() - started


def run_sweep_timings(*, repeats: int = 2) -> dict[str, float]:
    """Best-of-N wall-clock of the mini EXP-F1 sweep, serial and parallel."""
    serial = min(_sweep_once(None) for _ in range(repeats))
    record = {"serial_s": serial}
    parallel = min(_sweep_once(SWEEP_WORKERS) for _ in range(repeats))
    if parallel == parallel:  # NaN when the executor is unavailable
        record["workers"] = SWEEP_WORKERS
        record["workers_s"] = parallel
        record["parallel_speedup"] = serial / parallel
    return record


def build_record(*, skip_sweep: bool = False) -> dict:
    record = {
        "schema": 1,
        "date": _dt.date.today().isoformat(),
        "rev": _git_rev(),
        "python": sys.version.split()[0],
        "hotpath": run_hotpath_benchmarks(),
    }
    if not skip_sweep:
        record["sweep_exp1_mini"] = run_sweep_timings()
    return record


def compare(record: dict, baseline: dict) -> list[str]:
    lines = []
    base_hot = baseline.get("hotpath", {})
    for name, stats in record.get("hotpath", {}).items():
        if name in base_hot:
            ratio = base_hot[name]["mean_s"] / stats["mean_s"]
            lines.append(f"  {name:<18} {base_hot[name]['mean_s'] * 1e3:9.2f}ms"
                         f" -> {stats['mean_s'] * 1e3:9.2f}ms"
                         f"   speedup {ratio:5.2f}x")
    base_sweep = baseline.get("sweep_exp1_mini")
    sweep = record.get("sweep_exp1_mini")
    if base_sweep and sweep:
        serial = base_sweep["serial_s"]
        best_now = min(sweep["serial_s"],
                       sweep.get("workers_s", float("inf")))
        lines.append(f"  {'sweep (vs serial)':<18} {serial:9.2f}s "
                     f"-> {best_now:9.2f}s   speedup "
                     f"{serial / best_now:5.2f}x")
    return lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=None,
                        help="output path (default BENCH_<date>[.label].json)")
    parser.add_argument("--label", default=None,
                        help="tag inserted into the default filename, "
                             "e.g. 'baseline'")
    parser.add_argument("--compare", default=None, metavar="BENCH_JSON",
                        help="print speedups against an earlier record")
    parser.add_argument("--check", default=None, metavar="BENCH_JSON",
                        help="regression guard: exit 1 when engine_step "
                             "degrades more than --max-regression")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="allowed fractional engine_step slowdown "
                             "for --check (default 0.25)")
    parser.add_argument("--skip-sweep", action="store_true",
                        help="record only the microbenchmarks")
    args = parser.parse_args(argv)

    sys.path.insert(0, str(REPO / "src"))
    record = build_record(skip_sweep=args.skip_sweep or bool(args.check))

    if args.check:
        baseline = json.loads(Path(args.check).read_text())
        base = baseline["hotpath"]["engine_step"]["mean_s"]
        now = record["hotpath"]["engine_step"]["mean_s"]
        slowdown = now / base - 1.0
        print(f"engine_step: baseline {base * 1e3:.2f}ms, "
              f"current {now * 1e3:.2f}ms "
              f"({slowdown:+.1%} vs allowed +{args.max_regression:.0%})")
        if slowdown > args.max_regression:
            print("FAIL: engine hot path regressed beyond the guard",
                  file=sys.stderr)
            return 1
        print("OK: engine hot path within the regression guard")
        return 0

    if args.out:
        out = Path(args.out)
    else:
        stem = f"BENCH_{record['date']}"
        if args.label:
            stem += f".{args.label}"
        out = REPO / f"{stem}.json"
    out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    for name, stats in record["hotpath"].items():
        print(f"  {name:<18} mean {stats['mean_s'] * 1e3:9.2f}ms  "
              f"({stats['rounds']} rounds)")
    if "sweep_exp1_mini" in record:
        sweep = record["sweep_exp1_mini"]
        line = f"  {'sweep_exp1_mini':<18} serial {sweep['serial_s']:.2f}s"
        if sweep.get("workers_s", float("nan")) == sweep.get("workers_s"):
            line += (f"  workers={sweep['workers']} "
                     f"{sweep['workers_s']:.2f}s "
                     f"({sweep.get('parallel_speedup', 0):.2f}x)")
        print(line)

    if args.compare:
        baseline = json.loads(Path(args.compare).read_text())
        print(f"vs {args.compare}:")
        for line in compare(record, baseline):
            print(line)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
