#!/usr/bin/env python
"""Record the repo's performance trajectory into ``BENCH_<date>.json``.

Runs the hot-path microbenchmarks (``benchmarks/bench_hotpath.py``
under pytest-benchmark) plus wall-clock timings of a miniature EXP-F1
sweep, and writes one JSON record so speedups are tracked PR-over-PR::

    python scripts/bench_record.py                    # BENCH_<today>.json
    python scripts/bench_record.py --label baseline   # BENCH_<today>.baseline.json
    python scripts/bench_record.py --compare BENCH_old.json
    python scripts/bench_record.py --check BENCH_old.json  # CI guard
    python scripts/bench_record.py --check   # vs newest BENCH_*.json

``--compare`` and ``--check`` given without a value resolve the
baseline themselves: the newest ``BENCH_*.json`` by the date embedded
in the *filename* (ties broken by full name), never by directory
enumeration order, and both print which baseline was used.

The ``sweep_exp1_mini`` block times the executor the way a figure
driver uses it — repeated ``sweep()`` calls against the warm worker
pool and the persistent suite cache:

* ``serial_s`` — one cold serial sweep, no cache (the reference).
* ``workers_cold_s`` — best cold ``workers=N`` call: chunked dispatch
  on a freshly forked pool, cache cold (every suite simulated).
* ``workers_s`` / ``parallel_speedup`` — best of the repeated calls,
  i.e. warm pool + warm cache: the steady-state cost of re-running the
  sweep.  This is the headline number; ``parallel_speedup_cold``
  isolates pure dispatch overhead against a serial sweep doing the
  same work — serial-first inline dispatch makes parity the floor,
  and ≈1.0 is also the ceiling on a single-core host, where the
  executor degrades to pure inline execution (the warm path proves
  re-runs are near-free).
* ``cache_cold_s`` / ``cache_warm_s`` / ``cache_speedup`` — the same
  warm-vs-cold contrast on the serial path, isolating the cache.

The ``batch_exp1`` block times the vectorized multi-seed batch engine
(:mod:`repro.sim.batch`, DESIGN.md §12) against the scalar engine on
one batch-eligible EXP-F1 cell at realistic seed counts — the
scalar-vs-batch speedup the acceptance criteria track — counting any
seeds the batch engine handed back for scalar fallback.

``--check`` re-runs the microbenchmarks and exits non-zero when the
``engine_step`` mean degrades by more than ``--max-regression``
(default 25%) against the given record; when that record also carries
``sweep_exp1_mini`` numbers, the mini sweep is re-timed and the check
fails whenever ``parallel_speedup`` lands below ``--min-speedup``
(default 1.0) — parallel-slower-than-serial is a regression, never
something to record silently — or, when the record carries a cold
number too, whenever ``parallel_speedup_cold`` lands below
``--min-cold-speedup`` (default 0.85): a cold pool must never lose to
the serial loop.  Parity is the theoretical ratio once dispatch goes
inline-first (and the exact ceiling on a single-CPU host, where the
paired estimator measures 0.93–1.04 across runs), so the default
leaves a noise allowance while still failing decisively on the
regression this guards against — reforking the pool per sweep, which
measured 0.76x.  When the compiled engine core (DESIGN.md §13) was
measured on this host, ``--check`` also enforces the
``engine_step / engine_step_compiled`` mean ratio against
``--min-compiled-speedup`` (default 2.0); hosts without the extension
print a loud SKIP instead.  ``--check`` also runs the batch
engine's differential guard — every ``PolicySummary`` of one
batch-eligible cell computed by both engines must be bitwise equal —
and replays the ``telemetry`` probe — one instrumented mini sweep that
must produce a run manifest whose cache section matches the live
counters.  ``scripts/ci_fast.sh`` runs all of these guards on every
fast loop.

The ``telemetry`` block embeds the instrumented sweep's headline
counters (engine/cache/sweep namespaces) in the record, so the bench
history doubles as a coarse workload-shape history.
"""

from __future__ import annotations

import argparse
import datetime as _dt
import inspect
import json
import os
import re
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

_BENCH_NAME = re.compile(r"^BENCH_(\d{4}-\d{2}-\d{2})")


def latest_bench_record(repo: Path = REPO) -> Path | None:
    """Newest ``BENCH_*.json`` by the date embedded in the filename.

    Deterministic: records sort on the parsed date (ties — e.g. a
    labeled record from the same day — break on the full filename),
    never on directory enumeration order or mtime, so ``--compare``
    and ``--check`` pick the same baseline on every filesystem.
    """
    best: tuple[tuple[_dt.date, str], Path] | None = None
    for path in repo.glob("BENCH_*.json"):
        match = _BENCH_NAME.match(path.name)
        if not match:
            continue
        try:
            date = _dt.date.fromisoformat(match.group(1))
        except ValueError:
            continue
        key = (date, path.name)
        if best is None or key > best[0]:
            best = (key, path)
    return best[1] if best else None


def _resolve_baseline(value: str | None) -> Path:
    """Turn a --compare/--check argument into a baseline path.

    An explicit path is used as given; no value (or ``latest``) picks
    the newest checked-in record via :func:`latest_bench_record`.
    """
    if value and value != "latest":
        return Path(value)
    latest = latest_bench_record()
    if latest is None:
        raise SystemExit(
            "no BENCH_*.json record found to compare against")
    return latest

#: Mini EXP-F1 sweep used for the wall-clock number: big enough that
#: per-cell costs dominate pool startup, small enough for CI.
SWEEP_UTILIZATIONS = (0.3, 0.5, 0.7, 0.9)
SWEEP_TASKSETS = 3
SWEEP_HORIZON = 1200.0
SWEEP_WORKERS = 4

#: Scalar-vs-batch engine timing (the ``batch_exp1`` block): one
#: batch-eligible EXP-F1 cell at a realistic seed count.  The cheap
#: kernels (no vector slack analysis) carry the headline speedup; the
#: full four-kernel suite is recorded alongside at a smaller seed
#: count so the lpSTA vector kernel's (smaller) win is tracked too.
BATCH_X = 0.7
BATCH_CHEAP_POLICIES = ("none", "static", "ccEDF")
BATCH_CHEAP_SEEDS = 256
BATCH_FULL_POLICIES = ("none", "static", "ccEDF", "lpSTA")
BATCH_FULL_SEEDS = 64


def _git_rev() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=REPO,
            capture_output=True, text=True, check=True).stdout.strip()
    except Exception:
        return "unknown"


def run_hotpath_benchmarks() -> dict[str, dict[str, float]]:
    """Run pytest-benchmark on bench_hotpath and return per-bench stats."""
    with tempfile.TemporaryDirectory() as tmp:
        out = Path(tmp) / "bench.json"
        cmd = [sys.executable, "-m", "pytest",
               str(REPO / "benchmarks" / "bench_hotpath.py"),
               "-q", "--benchmark-only", "-p", "no:cacheprovider",
               f"--benchmark-json={out}"]
        env = os.environ.copy()
        env["PYTHONPATH"] = os.pathsep.join(
            [str(REPO / "src")]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
        proc = subprocess.run(cmd, cwd=REPO, capture_output=True,
                              text=True, env=env)
        if proc.returncode != 0:
            sys.stderr.write(proc.stdout + proc.stderr)
            raise SystemExit(f"hot-path benchmarks failed "
                             f"(exit {proc.returncode})")
        payload = json.loads(out.read_text())
    stats: dict[str, dict[str, float]] = {}
    for bench in payload["benchmarks"]:
        name = bench["name"].removeprefix("test_")
        stats[name] = {
            "mean_s": bench["stats"]["mean"],
            "stddev_s": bench["stats"]["stddev"],
            "min_s": bench["stats"]["min"],
            "rounds": bench["stats"]["rounds"],
        }
    return stats


def _sweep_workload(u: float, seed: int):
    # Module-level (not a per-call closure) on purpose: the warm pool
    # is keyed on the spec's closure identities, so repeated sweeps
    # must pass the *same* workload object to reuse the pool.
    from repro.experiments.runner import bcwc_model, standard_taskset
    return (standard_taskset(8, u, seed), bcwc_model(0.5, seed))


def _sweep_once(workers: int | None,
                cache_dir: str | None = None) -> float:
    from repro.experiments.config import DEFAULT_POLICIES
    from repro.experiments.runner import sweep

    params = inspect.signature(sweep).parameters
    kwargs = {}
    if workers is not None:
        if "workers" not in params:
            return float("nan")  # executor not available in this revision
        kwargs["workers"] = workers
    if cache_dir is not None:
        if "cache_dir" not in params:
            return float("nan")  # cache not available in this revision
        kwargs["cache_dir"] = cache_dir
        kwargs["workload_id"] = "bench:exp1-mini:n=8:bcwc=0.5"
    started = time.perf_counter()
    sweep(SWEEP_UTILIZATIONS, _sweep_workload, DEFAULT_POLICIES,
          n_tasksets=SWEEP_TASKSETS, horizon=SWEEP_HORIZON, **kwargs)
    return time.perf_counter() - started


def run_sweep_timings(*, repeats: int = 2) -> dict[str, float]:
    """Wall-clock the mini EXP-F1 sweep: serial cold, parallel
    cold/warm (cold = fresh pool + fresh cache), cache cold/warm.

    ``parallel_speedup_cold`` compares a cold-pool parallel call
    against a serial sweep doing the *same work* — both start with a
    cold suite cache and persist every unit — so the metric isolates
    dispatch overhead (fork, warmup, IPC) instead of charging the
    parallel side for cache writes an uncached serial reference never
    performs.  The cold pair is sampled as interleaved serial/parallel
    pairs and the speedup is the ratio of the summed times: slow host
    load drift hits both sides of each pair equally and cancels,
    where single samples (or min-vs-min across a drifting window)
    would just measure the noise.  On a single-CPU host dispatch
    degrades to inline execution, so parity is the expected ratio.
    """
    try:
        from repro.experiments.parallel import shutdown_pool
    except ImportError:
        def shutdown_pool() -> None:
            pass

    serial = min(_sweep_once(None) for _ in range(repeats))
    record = {"serial_s": serial}
    cold_serial: list[float] = []
    warm_serial: list[float] = []
    cold_workers: list[float] = []
    warm_workers: list[float] = []
    for pair in range(max(4, repeats)):
        # Alternate which side of the pair runs first, so cache/thermal
        # carry-over from one sample into the next cancels too.
        sides = ("serial", "workers") if pair % 2 == 0 else (
            "workers", "serial")
        for side in sides:
            if side == "serial":
                with tempfile.TemporaryDirectory() as tmp:
                    cold_serial.append(_sweep_once(None, cache_dir=tmp))
                    warm_serial.append(_sweep_once(None, cache_dir=tmp))
            else:
                shutdown_pool()  # parallel samples start with a cold pool
                with tempfile.TemporaryDirectory() as tmp:
                    cold_workers.append(
                        _sweep_once(SWEEP_WORKERS, cache_dir=tmp))
                    warm_workers.append(
                        _sweep_once(SWEEP_WORKERS, cache_dir=tmp))
    cold = min(cold_serial)
    if cold == cold:  # NaN when the cache is unavailable
        record["cache_cold_s"] = cold
        record["cache_warm_s"] = min(warm_serial)
        record["cache_speedup"] = cold / min(warm_serial)
    best = min(warm_workers)
    if best == best:  # NaN when the executor is unavailable
        record["workers"] = SWEEP_WORKERS
        record["workers_cold_s"] = min(cold_workers)
        record["workers_s"] = best
        record["parallel_speedup"] = serial / best
        if cold == cold:
            record["parallel_speedup_cold"] = (sum(cold_serial)
                                               / sum(cold_workers))
    shutdown_pool()
    return record


def _batch_workload_pairs(n_seeds: int):
    """Pre-built, memo-warmed (taskset, model) pairs for fair timing.

    Both engines would otherwise race to populate the execution
    model's per-job work memo; warming it up front makes the scalar
    and batch phases time pure engine work in either run order.
    """
    from repro.experiments.runner import bcwc_model, standard_taskset

    pairs = {}
    for seed in range(n_seeds):
        taskset, model = (standard_taskset(8, BATCH_X, seed),
                          bcwc_model(0.5, seed))
        for task in taskset:
            index = 0
            release = task.phase
            while release < SWEEP_HORIZON:
                model.work(task, index)
                index += 1
                release += task.period
        pairs[seed] = (taskset, model)
    return pairs


def run_batch_timings() -> dict | None:
    """Scalar-vs-batch wall clock on one batch-eligible EXP-F1 cell.

    Times the engine phase only (workloads pre-generated, memos warm):
    the batch engine steps all seeds in lockstep, the scalar reference
    simulates the same (seed, policy) runs one at a time.  Rows the
    batch engine hands back for scalar fallback are counted — a
    speedup earned by falling back would be meaningless.
    """
    try:
        from repro.sim.batch import batch_available, run_batch_suites
    except ImportError:
        return None  # batch engine not available in this revision
    if not batch_available():
        return None
    from repro.cpu.profiles import ideal_processor
    from repro.policies.registry import make_policy
    from repro.sim.engine import simulate

    def measure(policies: tuple[str, ...], n_seeds: int) -> dict:
        pairs = _batch_workload_pairs(n_seeds)
        seeds = list(range(n_seeds))
        started = time.perf_counter()
        rows = run_batch_suites(
            BATCH_X, seeds, make_workload=lambda x, seed: pairs[seed],
            policy_names=policies, processor=ideal_processor(),
            horizon=SWEEP_HORIZON)
        batch_s = time.perf_counter() - started
        fallbacks = (n_seeds if rows is None
                     else sum(row is None for row in rows))
        started = time.perf_counter()
        for seed in seeds:
            taskset, model = pairs[seed]
            processor = ideal_processor()
            for name in policies:
                simulate(taskset, processor, make_policy(name), model,
                         horizon=SWEEP_HORIZON)
        scalar_s = time.perf_counter() - started
        return {"seeds": n_seeds, "policies": list(policies),
                "scalar_s": scalar_s, "batch_s": batch_s,
                "speedup": scalar_s / batch_s, "fallbacks": fallbacks}

    return {
        "x": BATCH_X,
        "horizon": SWEEP_HORIZON,
        "cheap": measure(BATCH_CHEAP_POLICIES, BATCH_CHEAP_SEEDS),
        "full": measure(BATCH_FULL_POLICIES, BATCH_FULL_SEEDS),
    }


def run_batch_differential(n_seeds: int = 8) -> dict | None:
    """The ``--check`` differential: batch summaries == scalar, bitwise.

    One batch-eligible EXP-F1 cell, every seed's ``PolicySummary``
    dict computed by both engines and compared for exact equality
    (PolicySummary is a float/int tuple, so ``==`` is bitwise here).
    """
    try:
        from repro.sim.batch import batch_available, run_batch_suites
    except ImportError:
        return None
    if not batch_available():
        return {"skipped": "numpy unavailable; scalar fallback is the "
                           "contract"}
    from repro.cpu.profiles import ideal_processor
    from repro.experiments.cache import PolicySummary
    from repro.policies.registry import make_policy
    from repro.sim.engine import simulate

    pairs = _batch_workload_pairs(n_seeds)
    seeds = list(range(n_seeds))
    rows = run_batch_suites(
        BATCH_X, seeds, make_workload=lambda x, seed: pairs[seed],
        policy_names=BATCH_FULL_POLICIES, processor=ideal_processor(),
        horizon=SWEEP_HORIZON)
    result = {"units": n_seeds, "fallbacks": 0, "mismatches": 0}
    if rows is None:
        result["fallbacks"] = n_seeds
        return result
    for seed, row in zip(seeds, rows):
        if row is None:
            result["fallbacks"] += 1
            continue
        taskset, model = pairs[seed]
        processor = ideal_processor()
        baseline = None
        for name in BATCH_FULL_POLICIES:
            scalar = simulate(taskset, processor, make_policy(name),
                              model, horizon=SWEEP_HORIZON)
            if baseline is None:
                baseline = scalar
            metrics = scalar.policy_metrics
            reference = PolicySummary(
                normalized=scalar.normalized_energy(baseline),
                misses=len(scalar.deadline_misses),
                switches=scalar.switch_count,
                overruns=scalar.overrun_jobs,
                released=scalar.jobs_released,
                interventions=int(metrics.get("interventions", 0)),
                dispatches=int(metrics.get("dispatches", 0)))
            if row[name] != reference:
                result["mismatches"] += 1
    return result


def run_telemetry_probe() -> dict | None:
    """One instrumented mini sweep: counters + manifest sanity.

    Enables the telemetry registry around a single serial mini sweep,
    embeds the headline counters in the bench record, and reports
    whether the sweep produced a loadable run manifest whose cache
    section matches the cache counters.  Runs *after* the timing
    blocks so the enabled registry never pollutes a timed run, and
    always resets/disables the process-global registry on the way out.
    """
    try:
        from repro.telemetry import TELEMETRY, RunManifest
    except ImportError:
        return None  # telemetry not available in this revision
    probe: dict = {}
    with tempfile.TemporaryDirectory() as tmp:
        manifest_dir = Path(tmp) / "tele"
        TELEMETRY.configure(enabled=True, manifest_dir=manifest_dir)
        try:
            probe["sweep_s"] = _sweep_once(None, cache_dir=tmp)
            snap = TELEMETRY.snapshot()
        finally:
            TELEMETRY.configure(enabled=False)
            TELEMETRY.reset()
        counters = snap["counters"]
        probe["counters"] = {
            name: counters[name] for name in sorted(counters)
            if name.split(".")[0] in
            ("engine", "cache", "sweep", "governor")}
        manifests = sorted(manifest_dir.glob("manifest_*.json"))
        probe["manifest_written"] = bool(manifests)
        if manifests:
            manifest = RunManifest.load(manifests[-1])
            probe["manifest_consistent"] = (
                manifest.cache.get("misses") == counters.get(
                    "cache.misses", 0)
                and manifest.cache.get("writes") == counters.get(
                    "cache.writes", 0))
    return probe


def build_record(*, skip_sweep: bool = False) -> dict:
    record = {
        "schema": 1,
        "date": _dt.date.today().isoformat(),
        "rev": _git_rev(),
        "python": sys.version.split()[0],
        "hotpath": run_hotpath_benchmarks(),
    }
    if not skip_sweep:
        record["sweep_exp1_mini"] = run_sweep_timings()
        batch = run_batch_timings()
        if batch is not None:
            record["batch_exp1"] = batch
        record["telemetry"] = run_telemetry_probe()
    return record


def compare(record: dict, baseline: dict) -> list[str]:
    lines = []
    base_hot = baseline.get("hotpath", {})
    for name, stats in record.get("hotpath", {}).items():
        if name in base_hot:
            ratio = base_hot[name]["mean_s"] / stats["mean_s"]
            lines.append(f"  {name:<18} {base_hot[name]['mean_s'] * 1e3:9.2f}ms"
                         f" -> {stats['mean_s'] * 1e3:9.2f}ms"
                         f"   speedup {ratio:5.2f}x")
    base_sweep = baseline.get("sweep_exp1_mini")
    sweep = record.get("sweep_exp1_mini")
    if base_sweep and sweep:
        serial = base_sweep["serial_s"]
        best_now = min(sweep["serial_s"],
                       sweep.get("workers_s", float("inf")))
        lines.append(f"  {'sweep (vs serial)':<18} {serial:9.2f}s "
                     f"-> {best_now:9.2f}s   speedup "
                     f"{serial / best_now:5.2f}x")
        base_par = base_sweep.get("parallel_speedup")
        now_par = sweep.get("parallel_speedup")
        if base_par is not None and now_par is not None:
            lines.append(f"  {'parallel_speedup':<18} {base_par:9.2f}x "
                         f"-> {now_par:9.2f}x")
    return lines


def warn_if_parallel_regressed(record: dict,
                               min_speedup: float = 1.0) -> bool:
    """Print a loud warning when parallel runs slower than serial.

    Returns True when the record's mini-sweep ``parallel_speedup``
    exists and is below *min_speedup* — the condition ``--check``
    turns into a non-zero exit instead of silently recording it.
    """
    speedup = (record.get("sweep_exp1_mini") or {}).get("parallel_speedup")
    if speedup is None or speedup >= min_speedup:
        return False
    print(f"WARNING: sweep_exp1_mini.parallel_speedup = {speedup:.2f}x "
          f"< {min_speedup:.2f}x — the parallel executor is not paying "
          f"for its dispatch overhead on this host", file=sys.stderr)
    return True


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=None,
                        help="output path (default BENCH_<date>[.label].json)")
    parser.add_argument("--label", default=None,
                        help="tag inserted into the default filename, "
                             "e.g. 'baseline'")
    parser.add_argument("--compare", nargs="?", const="latest",
                        default=None, metavar="BENCH_JSON",
                        help="print speedups against an earlier record; "
                             "with no value, the newest BENCH_*.json by "
                             "the date in its filename")
    parser.add_argument("--check", nargs="?", const="latest",
                        default=None, metavar="BENCH_JSON",
                        help="regression guard: exit 1 when engine_step "
                             "degrades more than --max-regression; with "
                             "no value, the newest BENCH_*.json by the "
                             "date in its filename")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="allowed fractional engine_step slowdown "
                             "for --check (default 0.25)")
    parser.add_argument("--min-speedup", type=float, default=1.0,
                        help="minimum mini-sweep parallel_speedup for "
                             "--check, when the baseline record has "
                             "sweep numbers (default 1.0)")
    parser.add_argument("--min-cold-speedup", type=float, default=0.85,
                        help="minimum mini-sweep parallel_speedup_cold "
                             "for --check: a cold pool must never lose "
                             "to the serial loop; parity is the "
                             "theoretical ceiling on single-CPU hosts, "
                             "so the default allows measurement noise "
                             "while still catching the refork-per-sweep "
                             "regression (0.76x) outright (default 0.85)")
    parser.add_argument("--min-compiled-speedup", type=float, default=2.0,
                        help="minimum engine_step/engine_step_compiled "
                             "mean ratio for --check, enforced only when "
                             "the compiled anchor was measured on this "
                             "host (default 2.0)")
    parser.add_argument("--skip-sweep", action="store_true",
                        help="record only the microbenchmarks")
    args = parser.parse_args(argv)

    sys.path.insert(0, str(REPO / "src"))
    # Read the --compare baseline before anything is written: the
    # record this run writes may overwrite the newest BENCH_*.json
    # (same-day re-record), and comparing a record against itself is
    # vacuous.
    compare_baseline = None
    if args.compare:
        path = _resolve_baseline(args.compare)
        compare_baseline = (path.name, json.loads(path.read_text()))
    record = build_record(skip_sweep=args.skip_sweep or bool(args.check))

    if args.check:
        # Every guard runs and every failure is reported before the
        # verdict: a single CI pass shows the full damage instead of
        # stopping at the first broken guard and hiding the rest.
        failures: list[str] = []

        def fail(message: str) -> None:
            failures.append(message)
            print(f"FAIL: {message}", file=sys.stderr)

        baseline_path = _resolve_baseline(args.check)
        baseline = json.loads(baseline_path.read_text())
        print(f"baseline: {baseline_path.name}"
              + (" (newest BENCH record by filename date)"
                 if args.check == "latest" else ""))
        base = baseline["hotpath"]["engine_step"]["mean_s"]
        now = record["hotpath"]["engine_step"]["mean_s"]
        slowdown = now / base - 1.0
        print(f"engine_step: baseline {base * 1e3:.2f}ms, "
              f"current {now * 1e3:.2f}ms "
              f"({slowdown:+.1%} vs allowed +{args.max_regression:.0%})")
        if slowdown > args.max_regression:
            fail("engine hot path regressed beyond the guard")
        else:
            print("OK: engine hot path within the regression guard")
        compiled = record["hotpath"].get("engine_step_compiled")
        if compiled is not None:
            ratio = now / compiled["mean_s"]
            if ratio < args.min_compiled_speedup:
                fail(f"compiled core speedup {ratio:.2f}x < "
                     f"{args.min_compiled_speedup:.2f}x "
                     f"(engine_step / engine_step_compiled)")
            else:
                print(f"OK: compiled core speedup {ratio:.2f}x "
                      f"(>= {args.min_compiled_speedup:.2f}x)")
        else:
            print("SKIP: compiled core speedup — extension not built "
                  "on this host")
        if (baseline.get("sweep_exp1_mini") or {}).get("parallel_speedup"):
            record["sweep_exp1_mini"] = run_sweep_timings()
            speedup = record["sweep_exp1_mini"].get("parallel_speedup")
            if warn_if_parallel_regressed(record, args.min_speedup):
                fail("parallel sweep regressed below the guard")
            elif speedup is not None:
                print(f"OK: sweep_exp1_mini.parallel_speedup = "
                      f"{speedup:.2f}x (>= {args.min_speedup:.2f}x)")
            cold = record["sweep_exp1_mini"].get("parallel_speedup_cold")
            if (cold is not None
                    and (baseline.get("sweep_exp1_mini") or {}).get(
                        "parallel_speedup_cold")):
                if cold < args.min_cold_speedup:
                    fail(f"sweep_exp1_mini.parallel_speedup_cold "
                         f"= {cold:.2f}x < {args.min_cold_speedup:.2f}x "
                         f"— a cold pool is losing to the serial loop")
                else:
                    print(f"OK: sweep_exp1_mini.parallel_speedup_cold = "
                          f"{cold:.2f}x (>= {args.min_cold_speedup:.2f}x)")
        diff = run_batch_differential()
        if diff is not None:
            if diff.get("skipped"):
                print(f"SKIP: batch differential — {diff['skipped']}")
            elif diff["mismatches"]:
                fail(f"batch engine diverged from the scalar "
                     f"engine on {diff['mismatches']} summaries "
                     f"(of {diff['units']} units)")
            elif diff["fallbacks"] >= diff["units"]:
                fail("batch engine fell back to scalar on every "
                     "unit of a batch-eligible cell")
            else:
                print(f"OK: batch differential — {diff['units']} units, "
                      f"{diff['fallbacks']} scalar fallback(s), "
                      f"summaries bitwise equal")
        probe = run_telemetry_probe()
        if probe is not None:
            probe_ok = True
            if not probe.get("manifest_written"):
                fail("instrumented mini sweep wrote no run manifest")
                probe_ok = False
            if not probe.get("manifest_consistent"):
                fail("run manifest cache section disagrees with "
                     "the telemetry counters")
                probe_ok = False
            if probe_ok:
                steps = probe["counters"].get("engine.steps", 0)
                print(f"OK: telemetry probe — manifest written and "
                      f"consistent ({steps} engine steps counted)")
        if failures:
            print(f"{len(failures)} guard(s) failed:", file=sys.stderr)
            for message in failures:
                print(f"  - {message}", file=sys.stderr)
            return 1
        print("all perf guards passed")
        return 0

    if args.out:
        out = Path(args.out)
    else:
        stem = f"BENCH_{record['date']}"
        if args.label:
            stem += f".{args.label}"
        out = REPO / f"{stem}.json"
    out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    for name, stats in record["hotpath"].items():
        print(f"  {name:<18} mean {stats['mean_s'] * 1e3:9.2f}ms  "
              f"({stats['rounds']} rounds)")
    if "sweep_exp1_mini" in record:
        sweep = record["sweep_exp1_mini"]
        line = f"  {'sweep_exp1_mini':<18} serial {sweep['serial_s']:.2f}s"
        if sweep.get("workers_s", float("nan")) == sweep.get("workers_s"):
            line += (f"  workers={sweep['workers']} "
                     f"cold {sweep.get('workers_cold_s', 0):.2f}s "
                     f"warm {sweep['workers_s']:.3f}s "
                     f"({sweep.get('parallel_speedup', 0):.2f}x warm, "
                     f"{sweep.get('parallel_speedup_cold', 0):.2f}x cold)")
        print(line)
        if "cache_speedup" in sweep:
            print(f"  {'suite cache':<18} cold {sweep['cache_cold_s']:.2f}s"
                  f"  warm {sweep['cache_warm_s']:.3f}s "
                  f"({sweep['cache_speedup']:.1f}x)")
        warn_if_parallel_regressed(record)
    if record.get("batch_exp1"):
        for label, block in (("batch (3 kernels)",
                              record["batch_exp1"]["cheap"]),
                             ("batch (4 kernels)",
                              record["batch_exp1"]["full"])):
            print(f"  {label:<18} scalar {block['scalar_s']:.2f}s  "
                  f"batch {block['batch_s']:.2f}s "
                  f"({block['speedup']:.2f}x at {block['seeds']} seeds, "
                  f"{block['fallbacks']} fallbacks)")
    if record.get("telemetry"):
        probe = record["telemetry"]
        state = ("manifest ok" if probe.get("manifest_consistent")
                 else "MANIFEST INCONSISTENT")
        print(f"  {'telemetry':<18} instrumented sweep "
              f"{probe['sweep_s']:.2f}s  {state}")

    if compare_baseline is not None:
        baseline_name, baseline = compare_baseline
        print(f"vs {baseline_name}"
              + (" (newest BENCH record by filename date):"
                 if args.compare == "latest" else ":"))
        for line in compare(record, baseline):
            print(line)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
