#!/usr/bin/env bash
# Fast CI loop: tier-1 tests minus the slow sweeps, the parallel
# executor's determinism/cache contract, then the perf regression
# guards against the newest checked-in BENCH_*.json.
#
#   scripts/ci_fast.sh            # tests + determinism + perf guards
#
# The perf guard fails when the engine_step mean degrades more than
# 25% against the recorded trajectory, when the mini-sweep
# parallel_speedup falls below 1.0, when parallel_speedup_cold falls
# below 0.85 (a cold pool must never lose to a serial loop doing the
# same work; parity is the ceiling on a one-CPU host, 0.85 leaves
# noise room yet still catches the 0.76x refork regression), when the
# batch engine's summaries diverge bitwise from the scalar engine's,
# when the compiled engine core runs less than 2x faster than the
# interpreted loop (hosts where it was built), or when the
# instrumented mini sweep fails to produce a consistent run manifest
# (scripts/bench_record.py --check).
# The full tier-1 gate remains `PYTHONPATH=src python -m pytest -x -q`.
set -euo pipefail
cd "$(dirname "$0")/.."

PYTHONPATH=src python -m pytest -x -q -m "not slow"

# The byte-identity contract of the chunked warm-pool executor and the
# suite cache, explicitly — the guard the parallel layer lives under.
PYTHONPATH=src python -m pytest -x -q \
    tests/test_parallel_sweep.py tests/test_cell_cache.py

# The telemetry layer's own contracts: disabled-path overhead guard,
# serial-equals-parallel merge, manifest consistency.
PYTHONPATH=src python -m pytest -x -q -m telemetry

# The vectorized batch engine's differential guard: its unit subset,
# then one EXP-F1 mini-cell run batch="on" and batch="off" (serial and
# parallel) whose cell fingerprints must match bit for bit.
PYTHONPATH=src python -m pytest -x -q -m batch
PYTHONPATH=src python scripts/batch_gate.py

# Compiled engine core (DESIGN.md §13): its unit subset, then one
# EXP-F1 mini-cell and one fault-matrix cell run with the compiled
# core forced off and on (serial and parallel) whose cell fingerprints
# must match bit for bit.  The gate builds the extension in place when
# a C toolchain exists and skips loudly when none does — the
# interpreted engine is the contract on such hosts.
PYTHONPATH=src python -m pytest -x -q -m compiled
PYTHONPATH=src python scripts/compiled_gate.py

# Schedule-invariant audit over one reference cell and one
# fault-matrix cell, every policy: fails on any Violation.
PYTHONPATH=src python scripts/trace_audit_gate.py

# Resilience contract: a sweep with one injected worker crash and one
# injected hang must complete, quarantine nothing, and match the
# clean-run fingerprint byte for byte.
PYTHONPATH=src python scripts/chaos_gate.py

# Live-observability contract (DESIGN.md §14): the watch subset, then
# one EXP-F1 mini-cell at --workers 2 whose progress.jsonl must be
# schema-valid and time-monotonic, count exactly the sweep's units,
# match the run manifest's progress block field for field, and leave
# the cell results byte-identical with the stream on or off.
PYTHONPATH=src python -m pytest -x -q -m watch
PYTHONPATH=src python scripts/progress_gate.py

# Profiling contract (DESIGN.md §15): the profile subset, then one
# EXP-F1 mini-cell whose cells must stay byte-identical with phase
# timers on or off, whose budget categories must sum exactly to the
# attributed wall, and whose engine_step anchor must pay nothing
# measurable when profiling is off and stay under the declared
# OVERHEAD_BUDGET when it is on.
PYTHONPATH=src python -m pytest -x -q -m profile
PYTHONPATH=src python scripts/profile_gate.py

# Perf guard: bench_record.py resolves the newest BENCH_*.json itself
# (by the date in the filename, not directory order) and names the
# baseline it compared against.
if ! ls BENCH_*.json >/dev/null 2>&1; then
    echo "no BENCH_*.json record found; skipping the perf guard"
    exit 0
fi
PYTHONPATH=src python scripts/bench_record.py --check
