#!/usr/bin/env bash
# Fast CI loop: tier-1 tests minus the slow sweeps, then the hot-path
# perf regression guard against the newest checked-in BENCH_*.json.
#
#   scripts/ci_fast.sh            # ~15s: tests + engine_step guard
#
# The guard fails when the engine_step mean degrades more than 25%
# against the recorded trajectory (scripts/bench_record.py --check).
# The full tier-1 gate remains `PYTHONPATH=src python -m pytest -x -q`.
set -euo pipefail
cd "$(dirname "$0")/.."

PYTHONPATH=src python -m pytest -x -q -m "not slow"

latest=$(ls -1 BENCH_*.json 2>/dev/null | sort | tail -n 1 || true)
if [[ -z "${latest}" ]]; then
    echo "no BENCH_*.json record found; skipping the perf guard"
    exit 0
fi
echo "perf guard vs ${latest}"
PYTHONPATH=src python scripts/bench_record.py --check "${latest}"
