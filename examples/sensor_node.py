#!/usr/bin/env python3
"""Battery-powered sensor node: sporadic arrivals + leakage power.

A wireless sensor node runs a sampling loop, an event-driven detection
task whose activations are sporadic (minimum separation, bursty
pattern), a radio task with long quiet gaps, and housekeeping.  The
processor leaks: active power is ``s^3 + 0.3``, so below the critical
speed stretching wastes energy.

The example shows the two extension mechanisms working together:

* sporadic gaps are harvested as slack by lpSTA even though the policy
  only ever assumes the minimum separation (hard guarantee preserved);
* the critical-speed floor keeps the leaky processor out of the
  counterproductive ultra-slow regime.

Run:  python examples/sensor_node.py
"""

from repro import (
    BurstyArrival,
    ContinuousScale,
    ExponentialGapArrival,
    PeriodicArrival,
    PeriodicTask,
    PolynomialPowerModel,
    Processor,
    TaskSet,
    UniformExecution,
    make_policy,
    simulate,
)


def build_node() -> TaskSet:
    return TaskSet([
        PeriodicTask("sample", wcet=2.0, period=10.0),
        PeriodicTask("detect", wcet=8.0, period=40.0),
        PeriodicTask("radio", wcet=15.0, period=100.0),
        PeriodicTask("housekeep", wcet=10.0, period=200.0),
    ])


def main() -> None:
    taskset = build_node()
    print(taskset.describe())
    processor = Processor(
        scale=ContinuousScale(min_speed=0.05),
        power_model=PolynomialPowerModel(alpha=3.0, static=0.3),
        name="leaky-sensor-mcu")
    critical = processor.power_model.critical_speed()
    print(f"\nprocessor: P(s) = s^3 + 0.3, critical speed = {critical:.3f}")

    # detect activations are bursty; radio wakeups have long tails.
    arrival_scenarios = {
        "strictly periodic": PeriodicArrival(),
        "sporadic (bursty detect/radio)": None,  # built below per run
    }
    model = UniformExecution(low=0.3, high=1.0, seed=11)
    horizon = 4000.0

    print(f"\n{'scenario':<32} {'policy':<12} {'normalized':>11} "
          f"{'mean speed':>11}")
    for scenario in arrival_scenarios:
        if scenario.startswith("sporadic"):
            # One shared process object per run keeps arrivals
            # identical across the compared policies.
            def arrivals():
                return BurstyArrival(lull_factor=2.5, p_stay=0.85, seed=11)
        else:
            def arrivals():
                return PeriodicArrival()
        baseline = simulate(taskset, processor, make_policy("none"),
                            model, arrival_model=arrivals(),
                            horizon=horizon)
        for policy_name, kwargs in (
                ("static", {}),
                ("lpSTA", {}),
                ("lpSTA", {"critical_speed_floor": True})):
            policy = make_policy(policy_name, **kwargs)
            result = simulate(taskset, processor, policy, model,
                              arrival_model=arrivals(), horizon=horizon)
            assert not result.missed
            label = policy.name
            print(f"{scenario:<32} {label:<12} "
                  f"{result.normalized_energy(baseline):>11.3f} "
                  f"{result.mean_speed():>11.3f}")

    print("\nTakeaway: with heavy leakage, plain lpSTA stretches into "
          "the losing regime —\nand sporadic lulls make it *worse* "
          "(even slower speeds, even more leakage time).\nThe "
          "critical-speed floor (cs-lpSTA) repairs both scenarios and "
          "beats static\nscaling, with every hard deadline met under "
          "the minimum-separation guarantee.")


if __name__ == "__main__":
    main()
