#!/usr/bin/env python3
"""Speed-switch overhead study on an SA-1100-style processor.

Real parts pay for every voltage transition (the SA-1100 relocks in
~140 µs and charges the rail capacitance).  This example shows why the
overhead must be handled explicitly:

1. a naive aggressive policy on an overhead-free model (the usual
   paper assumption);
2. the same policy with the overhead charged but unguarded —
   demonstrating the deadline misses this can cause;
3. the overhead-aware wrapper: hard deadlines restored, unprofitable
   switches vetoed, and the energy still well below no-DVS.

Run:  python examples/overhead_study.py
"""

import numpy as np

from repro import (
    ConstantOverhead,
    OverheadAwarePolicy,
    PolynomialPowerModel,
    ContinuousScale,
    Processor,
    UniformExecution,
    generate_taskset,
    make_policy,
    simulate,
)


def build_processor(switch_time: float, switch_energy: float) -> Processor:
    return Processor(
        scale=ContinuousScale(min_speed=0.05),
        power_model=PolynomialPowerModel(alpha=3.0),
        transition_model=ConstantOverhead(switch_time=switch_time,
                                          switch_energy=switch_energy),
        name=f"cubic+switch(dt={switch_time:g}, dE={switch_energy:g})",
    )


def main() -> None:
    taskset = generate_taskset(8, 0.8, np.random.default_rng(77))
    model = UniformExecution(low=0.3, high=1.0, seed=77)
    horizon = 2400.0
    print(taskset.describe())

    free = build_processor(0.0, 0.0)
    costly = build_processor(0.8, 0.4)

    baseline = simulate(taskset, free, make_policy("none"), model,
                        horizon=horizon)

    # 1. The paper assumption: free switches.
    ideal = simulate(taskset, free, make_policy("lpSEH"), model,
                     horizon=horizon)
    print(f"\nfree switching:      lpSEH normalized="
          f"{ideal.normalized_energy(baseline):.3f} "
          f"switches={ideal.switch_count}")

    # 2. Charge the overhead but leave the policy naive.
    naive = simulate(taskset, costly, make_policy("lpSEH"), model,
                     horizon=horizon, allow_misses=True)
    print(f"naive under overhead: lpSEH normalized="
          f"{naive.normalized_energy(baseline):.3f} "
          f"switches={naive.switch_count} "
          f"DEADLINE MISSES={len(naive.deadline_misses)}")

    # 3. The overhead-aware wrapper.
    wrapper = OverheadAwarePolicy(make_policy("lpSEH"),
                                  reserve_factor=2.0)
    guarded = simulate(taskset, costly, wrapper, model, horizon=horizon)
    print(f"overhead-aware:       lpSEH normalized="
          f"{guarded.normalized_energy(baseline):.3f} "
          f"switches={guarded.switch_count} "
          f"vetoed={wrapper.vetoed_switches} misses=0")

    no_dvs_costly = simulate(taskset, costly, make_policy("none"), model,
                             horizon=horizon)
    saving = 1.0 - guarded.total_energy / no_dvs_costly.total_energy
    print(f"\nEven paying every transition, the guarded policy saves "
          f"{saving:.0%} vs no-DVS\nwhile meeting every deadline "
          f"(the naive run missed {len(naive.deadline_misses)}).")


if __name__ == "__main__":
    main()
