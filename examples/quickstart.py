#!/usr/bin/env python3
"""Quickstart: simulate one task set under every DVS policy.

Generates a random 5-task EDF workload at 80% worst-case utilization
whose jobs actually use 50-100% of their budgets, runs it on the ideal
continuous-DVS processor under every policy in the library, and prints
the normalized energy table plus a Gantt strip of the paper's lpSTA
schedule.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    ALL_POLICY_NAMES,
    UniformExecution,
    generate_taskset,
    ideal_processor,
    make_policy,
    simulate,
)


def main() -> None:
    rng = np.random.default_rng(42)
    taskset = generate_taskset(5, utilization=0.8, rng=rng)
    print(taskset.describe())

    processor = ideal_processor()
    model = UniformExecution(low=0.5, high=1.0, seed=42)
    horizon = 2400.0

    print(f"\nSimulating {horizon:g} time units on {processor.name} ...\n")
    print(f"{'policy':<12} {'energy':>12} {'normalized':>11} "
          f"{'switches':>9} {'mean speed':>11}")
    baseline = None
    for name in ALL_POLICY_NAMES:
        result = simulate(taskset, processor, make_policy(name), model,
                          horizon=horizon)
        if baseline is None:
            baseline = result
        assert not result.missed, "hard real-time violated?!"
        print(f"{name:<12} {result.total_energy:>12.2f} "
              f"{result.normalized_energy(baseline):>11.3f} "
              f"{result.switch_count:>9d} {result.mean_speed():>11.3f}")

    # A close-up of the paper's algorithm at work.
    result = simulate(taskset, processor, make_policy("lpSTA"), model,
                      horizon=200.0, record_trace=True)
    print("\nlpSTA schedule, first 200 time units "
          "(letters = tasks, dots = idle):")
    print(result.trace.render_gantt(width=100, end=200.0))


if __name__ == "__main__":
    main()
