#!/usr/bin/env python3
"""Avionics mission computer under shifting flight phases.

A 17-task generic-avionics workload whose actual demand moves through
mission phases: cruise (light), engagement (bursty heavy), return
(sinusoidal drift).  The phases are modelled with the library's
execution-time models; the point is that the slack-analysis policies
keep every hard deadline through abrupt workload shifts — the exact
property feedback/prediction schemes struggle with — while still
saving energy in the quiet phases.

Run:  python examples/avionics_mission.py
"""

from repro import (
    BimodalExecution,
    MarkovExecution,
    SinusoidalExecution,
    UniformExecution,
    avionics_taskset,
    ideal_processor,
    make_policy,
    simulate,
)

PHASES = {
    "cruise (light, stable)": UniformExecution(low=0.2, high=0.5, seed=31),
    "engagement (bursty heavy)": BimodalExecution(
        light=0.3, heavy=1.0, p_heavy=0.6, seed=31),
    "return (drifting load)": SinusoidalExecution(
        offset=0.55, amplitude=0.35, cycle=25, jitter=0.05, seed=31),
    "degraded sensors (markov)": MarkovExecution(
        light=0.25, heavy=0.95, p_stay=0.92, seed=31),
}

POLICIES = ("static", "ccEDF", "DRA", "laEDF", "lpSEH", "lpSTA")


def main() -> None:
    taskset = avionics_taskset()
    processor = ideal_processor()
    horizon = taskset.hyperperiod()  # 6000 ms
    print(taskset.describe())
    print(f"\nhorizon = {horizon:g} ms per phase\n")

    header = f"{'phase':<28}" + "".join(f"{p:>9}" for p in POLICIES)
    print(header)
    for phase_name, model in PHASES.items():
        baseline = simulate(taskset, processor, make_policy("none"),
                            model, horizon=horizon)
        cells = []
        for policy_name in POLICIES:
            result = simulate(taskset, processor,
                              make_policy(policy_name), model,
                              horizon=horizon)
            assert not result.missed, (
                f"{policy_name} missed a hard deadline in {phase_name}!")
            cells.append(result.normalized_energy(baseline))
        print(f"{phase_name:<28}" + "".join(f"{c:>9.3f}" for c in cells))

    print("\nAll deadlines met in every phase under every policy.")
    print("Note how the slack policies keep their lead on the bursty "
          "phases: they\nreclaim per-job earliness with a hard "
          "guarantee instead of predicting demand.")


if __name__ == "__main__":
    main()
