#!/usr/bin/env python3
"""CNC machine controller on a discrete-level embedded processor.

The scenario the paper's introduction motivates: a battery-powered
embedded controller with tight sensing/actuation loops whose jobs
usually finish well under their worst-case budgets.  This example runs
the CNC benchmark suite on two realistic processors (the textbook
4-level part and an XScale-style 5-level part), compares the DVS
policies, validates the lpSTA trace end-to-end, and prints per-task
response-time statistics to show the latency price of running slower.

Run:  python examples/cnc_controller.py
"""

from repro import (
    ALL_POLICY_NAMES,
    UniformExecution,
    cnc_taskset,
    generic4_processor,
    make_policy,
    simulate,
    xscale_processor,
)
from repro.analysis.validation import validate_run


def compare_policies(taskset, processor, model, horizon):
    print(f"\n--- {processor.name} ---")
    print(f"{'policy':<12} {'normalized':>11} {'switches':>9} "
          f"{'mean speed':>11}")
    baseline = None
    results = {}
    for name in ALL_POLICY_NAMES:
        result = simulate(taskset, processor, make_policy(name), model,
                          horizon=horizon)
        if baseline is None:
            baseline = result
        results[name] = result
        print(f"{name:<12} {result.normalized_energy(baseline):>11.3f} "
              f"{result.switch_count:>9d} {result.mean_speed():>11.3f}")
    return results


def main() -> None:
    taskset = cnc_taskset()
    print(taskset.describe())
    # One hyperperiod of the suite (all periods divide 153.6 ms).
    horizon = taskset.hyperperiod() * 4
    # Machining jobs fluctuate between 40% and 100% of their budgets.
    model = UniformExecution(low=0.4, high=1.0, seed=7)

    for processor in (generic4_processor(), xscale_processor()):
        results = compare_policies(taskset, processor, model, horizon)

        # Paranoia: replay and validate the paper policy's schedule.
        checked = simulate(taskset, processor, make_policy("lpSTA"),
                           model, horizon=horizon, record_trace=True)
        validate_run(checked, taskset, processor, model)
        print("lpSTA trace validated: deadlines, work conservation, "
              "speeds, energy.")

        # Latency price: mean/max response time per task under lpSTA.
        print(f"{'task':<14} {'jobs':>5} {'mean resp':>10} "
              f"{'max resp':>10} {'period':>8}")
        for task in taskset:
            stats = checked.task_stats[task.name]
            print(f"{task.name:<14} {stats.completed:>5d} "
                  f"{stats.mean_response:>10.3f} "
                  f"{stats.max_response:>10.3f} {task.period:>8.1f}")


if __name__ == "__main__":
    main()
