"""Setuptools shim for environments without the `wheel` package.

`pip install -e .` uses pyproject.toml; this file additionally wires
the *optional* compiled engine core (DESIGN.md §13): set
``REPRO_COMPILE=1`` to build ``repro.sim._fastcore`` from C during
install (``REPRO_COMPILE=1 pip install -e .`` or
``REPRO_COMPILE=1 python setup.py build_ext --inplace``).  Plain
installs skip the extension entirely and run interpreted — the
extension is declared ``optional`` so even a broken toolchain degrades
to the interpreted engine instead of failing the install.
"""
import os

from setuptools import Extension, setup

ext_modules = []
if os.environ.get("REPRO_COMPILE", "").strip().lower() in {"1", "on",
                                                           "true", "yes"}:
    ext_modules.append(Extension(
        "repro.sim._fastcore",
        sources=["src/repro/sim/_fastcore.c"],
        optional=True,
    ))

setup(ext_modules=ext_modules)
