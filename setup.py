"""Setuptools shim for environments without the `wheel` package.

`pip install -e .` uses pyproject.toml; this file only enables
`python setup.py develop` as an offline fallback.
"""
from setuptools import setup

setup()
